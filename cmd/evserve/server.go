package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"evprop"
	"evprop/internal/obs"
)

// server wraps one compiled engine behind HTTP handlers. The engine is safe
// for fully concurrent propagation, so handlers run lock-free: every request
// propagates independently on the shared engine, and request cancellation
// propagates into the scheduler via the request context.
type server struct {
	net   *evprop.Network
	eng   *evprop.Engine
	stats serverStats
	// log receives one access-log record per request (see instrument).
	log *slog.Logger
	// window aggregates the last 60 seconds of traffic for /v1/stats.
	window *obs.Window
	// timeout, when non-zero, bounds every request with a deadline that the
	// engine observes mid-propagation.
	timeout time.Duration
	// pprofEnabled wires net/http/pprof under /debug/pprof/ (opt-in via
	// the -pprof flag: profiling endpoints expose internals and should not
	// be on by default).
	pprofEnabled bool
	// co coalesces same-evidence /v1/batch sub-queries inside a micro-batch
	// window (the -batch-window flag); nil when the window is off.
	co *coalescer
	// cacheOn mirrors the engine's cache configuration so the hot path can
	// skip cache accounting without asking the engine each time.
	cacheOn bool
	// sampler takes the 1 s snapshots behind /v1/stream; started is the
	// uptime epoch reported by /v1/healthz and every snapshot.
	sampler *obs.Sampler[streamSnapshot]
	started time.Time
	// ready gates /v1/readyz: false until the listener is up, false again
	// once drain begins. drain is closed by beginDrain (via drainOnce) so
	// every in-flight /v1/stream handler unblocks during graceful shutdown.
	ready     atomic.Bool
	drain     chan struct{}
	drainOnce sync.Once
}

// serverStats aggregates request counters and propagation latency with
// atomics and a lock-free histogram so concurrent handlers never serialize.
type serverStats struct {
	queries atomic.Int64
	batches atomic.Int64
	mpes    atomic.Int64
	// errors counts HTTP error responses, incremented exactly once per
	// request inside httpError (the single choke point). Per-query
	// failures inside a /v1/batch body are reported in place and are not
	// HTTP errors.
	errors  atomic.Int64
	latency obs.Histogram
}

func (st *serverStats) observe(d time.Duration) { st.latency.Observe(d) }

func newServer(net *evprop.Network, opts evprop.Options) (*server, error) {
	eng, err := net.Compile(opts)
	if err != nil {
		return nil, err
	}
	s := &server{
		net:     net,
		eng:     eng,
		log:     slog.Default(),
		window:  obs.NewWindow(),
		cacheOn: opts.CacheSize > 0,
		started: time.Now(),
		drain:   make(chan struct{}),
	}
	s.sampler = obs.NewSampler(streamInterval, 60, s.snapshotNow)
	return s, nil
}

// mux routes the versioned /v1 API plus the original unversioned paths,
// kept as aliases so pre-/v1 clients keep working. Every route goes through
// instrument, so each request carries a query ID and emits one access-log
// record; only the pprof endpoints bypass it.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"/v1/model":                s.handleModel,
		"/v1/query":                s.handleQuery,
		"/v1/batch":                s.handleBatch,
		"/v1/mpe":                  s.handleMPE,
		"/v1/dsep":                 s.handleDSep,
		"/v1/stats":                s.handleStats,
		"/v1/metrics":              s.handleMetrics,
		"/v1/debug/flightrecorder": s.handleFlightRecorder,
		"/model":                   s.handleModel,
		"/query":                   s.handleQuery,
		"/mpe":                     s.handleMPE,
		"/dsep":                    s.handleDSep,
	}
	for path, h := range routes {
		m.HandleFunc(path, s.instrument(path, h))
	}
	// The stream and the health probes stay outside instrument: probes fire
	// every few seconds and a stream lives for minutes — folding either into
	// the QPS window or the access log would drown the real traffic signal.
	m.HandleFunc("/v1/stream", s.handleStream)
	m.HandleFunc("/v1/healthz", s.handleHealthz)
	m.HandleFunc("/v1/readyz", s.handleReadyz)
	if s.pprofEnabled {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return m
}

// statusFor maps engine errors onto HTTP statuses via errors.Is.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, evprop.ErrZeroProbabilityEvidence):
		return http.StatusUnprocessableEntity
	case errors.Is(err, evprop.ErrUncompiled), errors.Is(err, evprop.ErrResultClosed):
		return http.StatusInternalServerError
	default:
		// ErrUnknownVariable, ErrBadState and remaining input problems.
		return http.StatusBadRequest
	}
}

type modelResponse struct {
	Variables []modelVariable `json:"variables"`
}

type modelVariable struct {
	Name   string `json:"name"`
	States int    `json:"states"`
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := modelResponse{}
	for _, name := range s.net.Variables() {
		resp.Variables = append(resp.Variables, modelVariable{Name: name, States: s.net.States(name)})
	}
	s.writeJSON(w, resp)
}

type queryRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
	Query    []string        `json:"query"`
}

type queryResponse struct {
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors"`
}

// runQuery answers one query with exactly one evidence propagation: P(e)
// and the posteriors both derive from the same QueryResult.
func (s *server) runQuery(ctx context.Context, req queryRequest) (*queryResponse, error) {
	start := time.Now()
	ri := reqInfoFrom(ctx)
	ri.noteQuery(len(req.Evidence))
	res, err := s.eng.PropagateContext(ctx, req.Evidence)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	ri.noteRun(res.Metrics())
	if s.cacheOn {
		ri.noteCache(res.Cached())
	}
	resp := &queryResponse{PEvidence: res.ProbabilityOfEvidence(), Posteriors: map[string][]float64{}}
	if resp.PEvidence > 0 {
		post, err := res.Posteriors(req.Query...)
		if err != nil {
			return nil, err
		}
		resp.Posteriors = post
	}
	s.stats.observe(time.Since(start))
	return resp, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.stats.queries.Add(1)
	resp, err := s.runQuery(r.Context(), req)
	if err != nil {
		s.httpError(w, statusFor(err), err.Error())
		return
	}
	s.writeJSON(w, resp)
}

type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
}

// batchResult is one query's outcome; exactly one of Error or the query
// fields is meaningful. Failures are reported in place so one bad query
// does not void its siblings.
type batchResult struct {
	PEvidence  float64              `json:"p_evidence,omitempty"`
	Posteriors map[string][]float64 `json:"posteriors,omitempty"`
	Error      string               `json:"error,omitempty"`
}

// handleBatch answers many queries in one round trip, propagating them
// concurrently on the shared engine. With -batch-window set, sub-queries
// sharing an evidence signature are coalesced into one propagation (see
// coalesce.go); otherwise each sub-query propagates independently.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.stats.batches.Add(1)
	run := s.runQuery
	if s.co != nil {
		run = s.coalescedQuery
	}
	results := make([]batchResult, len(req.Queries))
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		wg.Add(1)
		go func(i int, q queryRequest) {
			defer wg.Done()
			resp, err := run(r.Context(), q)
			if err != nil {
				results[i] = batchResult{Error: err.Error()}
				return
			}
			results[i] = batchResult{PEvidence: resp.PEvidence, Posteriors: resp.Posteriors}
		}(i, q)
	}
	wg.Wait()
	s.writeJSON(w, batchResponse{Results: results})
}

type mpeRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
}

type mpeResponse struct {
	Assignment  map[string]int `json:"assignment"`
	Probability float64        `json:"probability"`
}

func (s *server) handleMPE(w http.ResponseWriter, r *http.Request) {
	var req mpeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.stats.mpes.Add(1)
	start := time.Now()
	ri := reqInfoFrom(r.Context())
	ri.noteQuery(len(req.Evidence))
	res, err := s.eng.PropagateContext(r.Context(), req.Evidence)
	if err != nil {
		s.httpError(w, statusFor(err), err.Error())
		return
	}
	defer res.Close()
	ri.noteRun(res.Metrics())
	assignment, p, err := res.MPE()
	if err != nil {
		s.httpError(w, statusFor(err), err.Error())
		return
	}
	s.stats.observe(time.Since(start))
	s.writeJSON(w, mpeResponse{Assignment: assignment, Probability: p})
}

type dsepRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
	Z []string `json:"z"`
}

type dsepResponse struct {
	Separated bool `json:"separated"`
}

func (s *server) handleDSep(w http.ResponseWriter, r *http.Request) {
	var req dsepRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	sep, err := s.net.DSeparated(req.X, req.Y, req.Z)
	if err != nil {
		s.httpError(w, statusFor(err), err.Error())
		return
	}
	s.writeJSON(w, dsepResponse{Separated: sep})
}

type statsResponse struct {
	Queries        int64   `json:"queries"`
	Batches        int64   `json:"batches"`
	MPEs           int64   `json:"mpes"`
	Errors         int64   `json:"errors"`
	Propagations   int64   `json:"propagations"`
	Workers        int     `json:"workers"`
	Scheduler      string  `json:"scheduler"`
	Observed       int64   `json:"observed"`
	AvgLatencyUsec float64 `json:"avg_latency_usec"`
	MaxLatencyUsec float64 `json:"max_latency_usec"`
	P50LatencyUsec float64 `json:"p50_latency_usec"`
	P95LatencyUsec float64 `json:"p95_latency_usec"`
	P99LatencyUsec float64 `json:"p99_latency_usec"`
	// LoadBalance and SchedOverheadFrac are the most recent propagation's
	// Fig. 8 gauges (max/mean per-worker busy time; scheduling fraction of
	// total worker time).
	LoadBalance       float64 `json:"load_balance"`
	SchedOverheadFrac float64 `json:"sched_overhead_fraction"`
	// Window covers only the last 60 seconds of traffic, where the fields
	// above aggregate over the whole process lifetime.
	Window windowStats `json:"window"`
	// Cache reports the engine's shared-evidence result cache plus the
	// server-side batch coalescer.
	Cache cacheStats `json:"cache"`
	// Gauges is the live scheduler surface (GL depth, active runs, per-worker
	// state/queue/steal gauges) — the same data /v1/stream pushes.
	Gauges evprop.SchedulerGauges `json:"scheduler_gauges"`
}

// cacheStats is the engine's cache snapshot plus the server-side coalescer
// counter (sub-queries answered by another sub-query's window-mate run).
type cacheStats struct {
	evprop.CacheStats
	BatchWindowUsec float64 `json:"batch_window_usec"`
	BatchCoalesced  int64   `json:"batch_coalesced"`
}

func (s *server) cacheStats() cacheStats {
	cs := cacheStats{CacheStats: s.eng.CacheStats()}
	if s.co != nil {
		cs.BatchWindowUsec = float64(s.co.window.Nanoseconds()) / 1e3
		cs.BatchCoalesced = s.co.coalesced.Load()
	}
	return cs
}

// windowStats is the JSON shape of the 60-second sliding window.
type windowStats struct {
	Seconds        int     `json:"seconds"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	QPS            float64 `json:"qps"`
	ErrorRate      float64 `json:"error_rate"`
	P50LatencyUsec float64 `json:"p50_latency_usec"`
	P99LatencyUsec float64 `json:"p99_latency_usec"`
	LoadBalance    float64 `json:"load_balance"`
	// QPSSeries is per-second request counts, oldest first; the last entry
	// is the current (incomplete) second.
	QPSSeries []int64 `json:"qps_series"`
	// CacheHitRate is the result-cache hit fraction over the window, and
	// CacheHitRateSeries its per-second trajectory aligned with QPSSeries
	// (both all-zero when the cache is off or idle).
	CacheHitRate       float64   `json:"cache_hit_rate"`
	CacheHitRateSeries []float64 `json:"cache_hit_rate_series"`
}

func (s *server) windowStats() windowStats {
	ws := s.window.Snapshot()
	return windowStats{
		Seconds:            ws.Seconds,
		Requests:           ws.Requests,
		Errors:             ws.Errors,
		QPS:                ws.QPS,
		ErrorRate:          ws.ErrorRate,
		P50LatencyUsec:     float64(ws.P50.Nanoseconds()) / 1e3,
		P99LatencyUsec:     float64(ws.P99.Nanoseconds()) / 1e3,
		LoadBalance:        ws.LoadBalance,
		QPSSeries:          ws.QPSSeries,
		CacheHitRate:       ws.CacheHitRate,
		CacheHitRateSeries: ws.CacheHitRateSeries,
	}
}

// handleStats reports request counters, the engine's scheduler invocation
// count, and propagation latency aggregates. Every latency field derives
// from the histogram, and the observed == 0 case yields plain zeros —
// never a 0/0 NaN, which would be invalid JSON.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	es := s.eng.Stats()
	sr := s.eng.SchedulerReport()
	h := &s.stats.latency
	resp := statsResponse{
		Queries:           s.stats.queries.Load(),
		Batches:           s.stats.batches.Load(),
		MPEs:              s.stats.mpes.Load(),
		Errors:            s.stats.errors.Load(),
		Propagations:      es.Propagations,
		Workers:           es.Workers,
		Scheduler:         es.Scheduler,
		Observed:          h.Count(),
		LoadBalance:       sr.LastLoadBalance,
		SchedOverheadFrac: sr.LastOverheadFraction,
		Window:            s.windowStats(),
		Cache:             s.cacheStats(),
		Gauges:            s.eng.SchedulerGauges(),
	}
	if resp.Observed > 0 {
		resp.AvgLatencyUsec = float64(h.Mean()) / 1e3
		resp.MaxLatencyUsec = float64(h.Max()) / 1e3
		resp.P50LatencyUsec = float64(h.Quantile(0.50)) / 1e3
		resp.P95LatencyUsec = float64(h.Quantile(0.95)) / 1e3
		resp.P99LatencyUsec = float64(h.Quantile(0.99)) / 1e3
	}
	s.writeJSON(w, resp)
}

// handleMetrics serves the Prometheus text exposition: request counters,
// the latency histogram, and the engine's scheduler observability (load
// balance, overhead fraction, per-kind time breakdown).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteHeader(w, "evprop_http_requests_total", "HTTP requests by kind.", "counter")
	obs.WriteSample(w, "evprop_http_requests_total", map[string]string{"kind": "query"}, float64(s.stats.queries.Load()))
	obs.WriteSample(w, "evprop_http_requests_total", map[string]string{"kind": "batch"}, float64(s.stats.batches.Load()))
	obs.WriteSample(w, "evprop_http_requests_total", map[string]string{"kind": "mpe"}, float64(s.stats.mpes.Load()))
	obs.WriteHeader(w, "evprop_http_errors_total", "HTTP error responses.", "counter")
	obs.WriteSample(w, "evprop_http_errors_total", nil, float64(s.stats.errors.Load()))
	es := s.eng.Stats()
	obs.WriteHeader(w, "evprop_propagations_total", "Completed scheduler invocations.", "counter")
	obs.WriteSample(w, "evprop_propagations_total", nil, float64(es.Propagations))
	obs.WriteHeader(w, "evprop_workers", "Configured propagation workers.", "gauge")
	obs.WriteSample(w, "evprop_workers", nil, float64(es.Workers))
	s.stats.latency.WritePrometheus(w, "evprop_request_duration_seconds", "End-to-end propagation latency of successful requests.")
	s.eng.WriteSchedulerMetrics(w, "evprop_sched")
	ws := s.window.Snapshot()
	obs.WriteHeader(w, "evprop_window_requests", "Requests in the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_requests", nil, float64(ws.Requests))
	obs.WriteHeader(w, "evprop_window_qps", "Mean requests/second over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_qps", nil, ws.QPS)
	obs.WriteHeader(w, "evprop_window_error_rate", "Error fraction over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_error_rate", nil, ws.ErrorRate)
	obs.WriteHeader(w, "evprop_window_latency_seconds", "Latency quantiles over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_latency_seconds", map[string]string{"quantile": "0.5"}, ws.P50.Seconds())
	obs.WriteSample(w, "evprop_window_latency_seconds", map[string]string{"quantile": "0.99"}, ws.P99.Seconds())
	obs.WriteHeader(w, "evprop_window_load_balance", "Mean load-balance factor over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_load_balance", nil, ws.LoadBalance)
	cs := s.cacheStats()
	obs.WriteHeader(w, "evprop_cache_hits_total", "Result-cache hits.", "counter")
	obs.WriteSample(w, "evprop_cache_hits_total", nil, float64(cs.Hits))
	obs.WriteHeader(w, "evprop_cache_misses_total", "Result-cache misses.", "counter")
	obs.WriteSample(w, "evprop_cache_misses_total", nil, float64(cs.Misses))
	obs.WriteHeader(w, "evprop_cache_collapsed_total", "Queries collapsed onto another caller's in-flight propagation.", "counter")
	obs.WriteSample(w, "evprop_cache_collapsed_total", nil, float64(cs.Collapsed))
	obs.WriteHeader(w, "evprop_cache_entries", "Result-cache entries currently held.", "gauge")
	obs.WriteSample(w, "evprop_cache_entries", nil, float64(cs.Entries))
	obs.WriteHeader(w, "evprop_cache_capacity", "Result-cache configured capacity.", "gauge")
	obs.WriteSample(w, "evprop_cache_capacity", nil, float64(cs.Capacity))
	obs.WriteHeader(w, "evprop_batch_coalesced_total", "Batch sub-queries coalesced into a window-mate's propagation.", "counter")
	obs.WriteSample(w, "evprop_batch_coalesced_total", nil, float64(cs.BatchCoalesced))
	obs.WriteHeader(w, "evprop_window_cache_hit_rate", "Result-cache hit fraction over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_cache_hit_rate", nil, ws.CacheHitRate)
	fs := s.eng.FlightRecorderStats()
	obs.WriteHeader(w, "evprop_flightrecorder_recorded_total", "Propagations seen by the flight recorder.", "counter")
	obs.WriteSample(w, "evprop_flightrecorder_recorded_total", nil, float64(fs.Recorded))
	obs.WriteHeader(w, "evprop_flightrecorder_slow_total", "Slow-query captures taken by the flight recorder.", "counter")
	obs.WriteSample(w, "evprop_flightrecorder_slow_total", nil, float64(fs.SlowCaptured))
	obs.WriteHeader(w, "evprop_flightrecorder_slow_threshold_seconds", "Current slow-query capture threshold (0 while calibrating).", "gauge")
	obs.WriteSample(w, "evprop_flightrecorder_slow_threshold_seconds", nil, fs.SlowThresholdUsec/1e6)
	s.writeGaugeMetrics(w)
}

// flightRecorderResponse is the /v1/debug/flightrecorder payload: recorder
// counters, the ring of recent queries, and the retained slow-query captures
// (full scheduler traces).
type flightRecorderResponse struct {
	Recorder evprop.FlightRecorderStats `json:"recorder"`
	Records  []evprop.FlightRecord      `json:"records"`
	Slow     []evprop.SlowQueryCapture  `json:"slow"`
}

// handleFlightRecorder dumps the flight recorder. `?id=q-…` filters both the
// ring and the slow captures to one query ID — the lookup used to correlate
// an X-Query-ID response header or access-log line with its scheduler run.
func (s *server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := flightRecorderResponse{
		Recorder: s.eng.FlightRecorderStats(),
		Records:  s.eng.RecentQueries(),
		Slow:     s.eng.SlowQueryCaptures(),
	}
	if id := r.URL.Query().Get("id"); id != "" {
		var recs []evprop.FlightRecord
		for _, rec := range resp.Records {
			if rec.ID == id {
				recs = append(recs, rec)
			}
		}
		var slow []evprop.SlowQueryCapture
		for _, c := range resp.Slow {
			if c.Record.ID == id {
				slow = append(slow, c)
			}
		}
		resp.Records, resp.Slow = recs, slow
	}
	s.writeJSON(w, resp)
}

// readJSON decodes a POST body, answering the error response itself (and
// returning false) when the method or payload is wrong.
func (s *server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The response is already committed, so no error body can follow;
		// count the failure without writing a second header.
		s.stats.errors.Add(1)
	}
}

// httpError writes the error response and increments the error counter —
// the one place it is incremented, so a request that fails is counted
// exactly once no matter which handler path rejected it.
func (s *server) httpError(w http.ResponseWriter, code int, msg string) {
	s.stats.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
