package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"evprop"
)

// TestStatsFreshServer pins the observed == 0 guard: a stats scrape before
// any traffic must be valid JSON with zero latency fields. Pre-fix the
// average was 0/0 = NaN, which json.Marshal cannot encode at all.
func TestStatsFreshServer(t *testing.T) {
	ts := testServer(t)
	s := statsSnapshot(t, ts) // decode fails outright on a NaN body
	if s.Observed != 0 {
		t.Fatalf("fresh server observed %d", s.Observed)
	}
	if s.AvgLatencyUsec != 0 || s.MaxLatencyUsec != 0 ||
		s.P50LatencyUsec != 0 || s.P95LatencyUsec != 0 || s.P99LatencyUsec != 0 {
		t.Errorf("fresh server reports nonzero latency: %+v", s)
	}
	if s.LoadBalance != 1 {
		t.Errorf("fresh server load balance %v, want the neutral 1", s.LoadBalance)
	}
}

func TestStatsPercentiles(t *testing.T) {
	ts := testServer(t)
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}})
	}
	s := statsSnapshot(t, ts)
	if s.Observed != 5 {
		t.Fatalf("observed %d, want 5", s.Observed)
	}
	if s.P50LatencyUsec <= 0 {
		t.Errorf("p50 %v", s.P50LatencyUsec)
	}
	if s.P50LatencyUsec > s.P95LatencyUsec || s.P95LatencyUsec > s.P99LatencyUsec {
		t.Errorf("percentiles not monotone: p50 %v p95 %v p99 %v",
			s.P50LatencyUsec, s.P95LatencyUsec, s.P99LatencyUsec)
	}
	if s.P99LatencyUsec > 2*s.MaxLatencyUsec+1 {
		t.Errorf("p99 %v far above max %v", s.P99LatencyUsec, s.MaxLatencyUsec)
	}
	// The scheduler gauges come from real propagations now.
	if s.LoadBalance < 1 {
		t.Errorf("load balance %v below 1", s.LoadBalance)
	}
	if s.SchedOverheadFrac < 0 || s.SchedOverheadFrac >= 1 {
		t.Errorf("scheduler overhead fraction %v outside [0, 1)", s.SchedOverheadFrac)
	}
}

// TestErrorCountedOncePerRequest pins the audited error semantics: every
// rejected request increments the counter exactly once, whichever path
// rejected it. Pre-fix, malformed JSON and wrong-method rejections were not
// counted at all.
func TestErrorCountedOncePerRequest(t *testing.T) {
	ts := testServer(t)
	errorsNow := func() int64 { return statsSnapshot(t, ts).Errors }
	if errorsNow() != 0 {
		t.Fatal("fresh server has errors")
	}
	// Malformed JSON → 400, one error.
	r, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{oops")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if got := errorsNow(); got != 1 {
		t.Errorf("after malformed JSON: errors %d, want 1", got)
	}
	// Wrong method → 405, one error.
	g, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if got := errorsNow(); got != 2 {
		t.Errorf("after wrong method: errors %d, want 2", got)
	}
	// Unknown variable → 400, one error (not two, despite the handler
	// passing through both runQuery and httpError).
	post(t, ts.URL+"/v1/query", queryRequest{Query: []string{"nope"}})
	if got := errorsNow(); got != 3 {
		t.Errorf("after unknown variable: errors %d, want 3", got)
	}
}

// TestBatchSubQueryFailuresNotHTTPErrors pins the other half of the audit: a
// batch that succeeds as an HTTP request does not bump the error counter for
// sub-queries that fail in place. Pre-fix each failing sub-query counted.
func TestBatchSubQueryFailuresNotHTTPErrors(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/v1/batch", batchRequest{Queries: []queryRequest{
		{Evidence: evprop.Evidence{"XRay": 1}},
		{Query: []string{"nope"}}, // fails in place
		{Query: []string{"also-nope"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var b batchResponse
	decode(t, resp, &b)
	if b.Results[1].Error == "" || b.Results[2].Error == "" {
		t.Fatal("sub-query failures not reported in place")
	}
	if got := statsSnapshot(t, ts).Errors; got != 0 {
		t.Errorf("in-place batch failures counted as HTTP errors: %d", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`evprop_http_requests_total{kind="query"} 1`,
		"evprop_http_errors_total 0",
		"evprop_propagations_total 1",
		"evprop_workers 2",
		"evprop_request_duration_seconds_count 1",
		`evprop_request_duration_seconds_bucket{le="+Inf"} 1`,
		"evprop_sched_runs_total 1",
		"evprop_sched_load_balance",
		"evprop_sched_overhead_fraction",
		`evprop_sched_kind_busy_seconds_total{kind="multiply"}`,
		"# TYPE evprop_request_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestPprofGating checks the profiling endpoints are absent by default and
// present when opted in.
func TestPprofGating(t *testing.T) {
	srv, err := newServer(evprop.Asia(), evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(srv.mux())
	t.Cleanup(off.Close)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without -pprof: status %d", resp.StatusCode)
	}

	srv2, err := newServer(evprop.Asia(), evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv2.pprofEnabled = true
	on := httptest.NewServer(srv2.mux())
	t.Cleanup(on.Close)
	resp2, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index with -pprof: status %d", resp2.StatusCode)
	}
}
