package main

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"evprop"
)

// Server-level tests of the caching layer: repeated-evidence queries hit the
// engine's result cache, the counters surface in /v1/stats and /v1/metrics,
// and -batch-window coalesces same-evidence batch sub-queries.

func TestQueryCacheHitCounters(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	req := queryRequest{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}}
	var first, second queryResponse
	decode(t, post(t, ts.URL+"/v1/query", req), &first)
	decode(t, post(t, ts.URL+"/v1/query", req), &second)
	if first.Posteriors["Lung"][1] != second.Posteriors["Lung"][1] {
		t.Errorf("cached posterior %v differs from fresh %v", second.Posteriors, first.Posteriors)
	}
	cs := srv.defaultEngine().CacheStats()
	if !cs.Enabled || cs.Hits < 1 {
		t.Fatalf("CacheStats = %+v, want enabled with ≥1 hit", cs)
	}
	if got := srv.defaultEngine().Stats().Propagations; got != 1 {
		t.Errorf("Propagations = %d, want 1 (second query must be a cache hit)", got)
	}

	var st statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp, &st)
	if !st.Cache.Enabled || st.Cache.Hits < 1 || st.Cache.Entries != 1 {
		t.Errorf("stats cache block = %+v", st.Cache)
	}
	if st.Window.CacheHitRate <= 0 {
		t.Errorf("window cache_hit_rate = %v, want > 0", st.Window.CacheHitRate)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, metric := range []string{
		"evprop_cache_hits_total",
		"evprop_cache_misses_total",
		"evprop_cache_collapsed_total",
		"evprop_cache_entries",
		"evprop_batch_coalesced_total",
		"evprop_window_cache_hit_rate",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/v1/metrics missing %s", metric)
		}
	}
}

func TestCachedFlightRecord(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	req := queryRequest{Evidence: evprop.Evidence{"Smoke": 1}, Query: []string{"Lung"}}
	post(t, ts.URL+"/v1/query", req)
	post(t, ts.URL+"/v1/query", req)
	recs := srv.defaultEngine().RecentQueries()
	if len(recs) != 2 {
		t.Fatalf("%d flight records, want 2", len(recs))
	}
	if recs[0].Cached {
		t.Errorf("first (miss) record marked cached")
	}
	if !recs[1].Cached {
		t.Errorf("second (hit) record not marked cached")
	}
}

func TestBatchWindowCoalesces(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	srv.co = newCoalescer(20 * time.Millisecond)
	// Eight sub-queries, two distinct evidence signatures. The batch fans
	// the sub-queries out concurrently, so each signature's group forms
	// within the window and propagates once.
	req := batchRequest{}
	for i := 0; i < 8; i++ {
		ev := evprop.Evidence{"XRay": 1}
		if i%2 == 1 {
			ev = evprop.Evidence{"Dysp": 1}
		}
		req.Queries = append(req.Queries, queryRequest{Evidence: ev, Query: []string{"Lung"}})
	}
	var br batchResponse
	decode(t, post(t, ts.URL+"/v1/batch", req), &br)
	if len(br.Results) != 8 {
		t.Fatalf("%d results", len(br.Results))
	}
	oracleX, _ := evprop.Asia().ExactMarginal("Lung", evprop.Evidence{"XRay": 1})
	oracleD, _ := evprop.Asia().ExactMarginal("Lung", evprop.Evidence{"Dysp": 1})
	for i, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("sub-query %d: %s", i, r.Error)
		}
		oracle := oracleX
		if i%2 == 1 {
			oracle = oracleD
		}
		if math.Abs(r.Posteriors["Lung"][1]-oracle[1]) > 1e-9 {
			t.Errorf("sub-query %d posterior %v, oracle %v", i, r.Posteriors["Lung"], oracle)
		}
	}
	if got := srv.defaultEngine().Stats().Propagations; got != 2 {
		t.Errorf("Propagations = %d, want 2 (one per distinct evidence)", got)
	}
	if got := srv.co.coalesced.Load(); got != 6 {
		t.Errorf("coalesced = %d, want 6", got)
	}
}

func TestBatchWindowProjection(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	srv.co = newCoalescer(5 * time.Millisecond)
	req := batchRequest{Queries: []queryRequest{
		// Evidence variable requested → exact one-hot.
		{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"XRay", "Lung"}},
		// Empty query → every non-evidence posterior.
		{Evidence: evprop.Evidence{"XRay": 1}},
		// Unknown variable → in-place error, siblings unaffected.
		{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Nope"}},
	}}
	var br batchResponse
	decode(t, post(t, ts.URL+"/v1/batch", req), &br)
	if got := br.Results[0].Posteriors["XRay"]; len(got) != 2 || got[1] != 1 || got[0] != 0 {
		t.Errorf("evidence one-hot = %v", got)
	}
	if _, ok := br.Results[0].Posteriors["Lung"]; !ok {
		t.Errorf("requested posterior missing: %v", br.Results[0].Posteriors)
	}
	if n := len(br.Results[1].Posteriors); n != 7 {
		t.Errorf("empty query returned %d posteriors, want 7", n)
	}
	if !strings.Contains(br.Results[2].Error, "Nope") {
		t.Errorf("unknown-variable error = %q", br.Results[2].Error)
	}
}

// TestBatchWindowLeaderCancelServesRiders is the server-side analogue of the
// engine's singleflight guarantee: a leader whose client vanishes must not
// void the riders that joined its window.
func TestBatchWindowRunDetachedFromLeader(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	srv.co = newCoalescer(10 * time.Millisecond)
	// A plain batch of identical sub-queries: the leader's own request
	// context is the batch request's context, shared by all riders, so this
	// exercises the detach only lightly — the deterministic cancellation
	// test lives at the engine layer (TestSingleflightStormOneWaiterCancels).
	req := batchRequest{Queries: []queryRequest{
		{Evidence: evprop.Evidence{"Smoke": 1}, Query: []string{"Lung"}},
		{Evidence: evprop.Evidence{"Smoke": 1}, Query: []string{"Bronc"}},
		{Evidence: evprop.Evidence{"Smoke": 1}},
	}}
	var br batchResponse
	decode(t, post(t, ts.URL+"/v1/batch", req), &br)
	for i, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("sub-query %d: %s", i, r.Error)
		}
	}
	if got := srv.defaultEngine().Stats().Propagations; got != 1 {
		t.Errorf("Propagations = %d, want 1", got)
	}
}
