package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"evprop"
)

// syncBuffer is a locked bytes.Buffer for capturing slog output: the access
// log is written after the handler returns, concurrently with the test
// goroutine reading it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForLogLine polls for an access-log line containing all substrings; the
// log record lands after the response is written, so a fresh read can race it.
func waitForLogLine(t *testing.T, buf *syncBuffer, want ...string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		sc := bufio.NewScanner(strings.NewReader(buf.String()))
	lines:
		for sc.Scan() {
			for _, w := range want {
				if !strings.Contains(sc.Text(), w) {
					continue lines
				}
			}
			return sc.Text()
		}
		if time.Now().After(deadline) {
			t.Fatalf("no log line with %q in:\n%s", want, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryIDCorrelation is the acceptance path: one request's X-Query-ID
// header locates the matching flight-recorder entry and access-log line.
func TestQueryIDCorrelation(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	var buf syncBuffer
	srv.log = slog.New(slog.NewTextHandler(&buf, nil))

	resp := post(t, ts.URL+"/v1/query", queryRequest{
		Evidence: evprop.Evidence{"XRay": 1},
		Query:    []string{"Lung"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Query-ID")
	if !strings.HasPrefix(id, "q-") {
		t.Fatalf("X-Query-ID %q", id)
	}

	// The same ID indexes the flight recorder…
	fr, err := http.Get(ts.URL + "/v1/debug/flightrecorder?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	var dump flightRecorderResponse
	decode(t, fr, &dump)
	if !dump.Recorder.Enabled {
		t.Fatal("recorder disabled")
	}
	if len(dump.Records) != 1 {
		t.Fatalf("%d records for id %q, want 1", len(dump.Records), id)
	}
	rec := dump.Records[0]
	if rec.Mode != "sum-product" || rec.EvidenceVars != 1 || rec.ElapsedUsec <= 0 {
		t.Errorf("record %+v", rec)
	}

	// …and the access log.
	line := waitForLogLine(t, &buf, "id="+id, "endpoint=/v1/query")
	for _, field := range []string{"status=200", "evidence_vars=1", "latency=", "sched_overhead_fraction="} {
		if !strings.Contains(line, field) {
			t.Errorf("access log line missing %q: %s", field, line)
		}
	}
}

// TestClientSuppliedQueryID checks the header is honored end to end.
func TestClientSuppliedQueryID(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	body := bytes.NewReader([]byte(`{"evidence":{"XRay":1},"query":["Lung"]}`))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Query-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Query-ID"); got != "trace-me-42" {
		t.Errorf("echoed ID %q", got)
	}
	var found bool
	for _, rec := range srv.defaultEngine().RecentQueries() {
		if rec.ID == "trace-me-42" {
			found = true
		}
	}
	if !found {
		t.Error("client-supplied ID not in flight recorder")
	}
}

// TestQueryIDValidation: a client-supplied ID that is oversized or outside
// the safe charset must not reach the log or the recorder — the server
// replaces it with a generated one.
func TestQueryIDValidation(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	// Control characters are rejected by net/http itself before the request
	// leaves the client, so only transport-legal but unsafe IDs appear here;
	// TestValidQueryID covers the rest.
	for _, bad := range []string{
		strings.Repeat("a", queryIDMaxLen+1),
		"spoof id",
		"непечатный",
	} {
		body := bytes.NewReader([]byte(`{"evidence":{"XRay":1},"query":["Lung"]}`))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Query-ID", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Query-ID")
		if got == bad || !strings.HasPrefix(got, "q-") {
			t.Errorf("ID %q was not replaced (response carries %q)", bad, got)
		}
		for _, rec := range srv.defaultEngine().RecentQueries() {
			if rec.ID == bad {
				t.Errorf("invalid ID %q reached the flight recorder", bad)
			}
		}
	}
}

func TestValidQueryID(t *testing.T) {
	for id, want := range map[string]bool{
		"trace-me-42":                        true,
		"q-9f2c41d3-17":                      true,
		"A.b_c:D-9":                          true,
		strings.Repeat("x", queryIDMaxLen):   true,
		"":                                   false,
		strings.Repeat("x", queryIDMaxLen+1): false,
		"has space":                          false,
		"new\nline":                          false,
		"q/slash":                            false,
	} {
		if got := validQueryID(id); got != want {
			t.Errorf("validQueryID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestFlightRecorderEndpointSlowCapture pins the slow threshold so every
// propagation is captured with its full scheduler trace, then reads the dump
// over HTTP.
func TestFlightRecorderEndpointSlowCapture(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2, SlowQueryThreshold: time.Nanosecond})
	post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	fr, err := http.Get(ts.URL + "/v1/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	var dump flightRecorderResponse
	decode(t, fr, &dump)
	if dump.Recorder.SlowCaptured == 0 || len(dump.Slow) == 0 {
		t.Fatalf("no slow captures: %+v", dump.Recorder)
	}
	c := dump.Slow[0]
	if !c.Record.Slow || len(c.Trace) == 0 || len(c.BusyPerWorkerUsec) != 2 {
		t.Errorf("capture %+v", c)
	}
	// POST is rejected.
	resp := post(t, ts.URL+"/v1/debug/flightrecorder", map[string]any{})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %d", resp.StatusCode)
	}
}

// TestStatsWindow checks the 60-second window rides along in /v1/stats and
// /v1/metrics.
func TestStatsWindow(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	}
	post(t, ts.URL+"/v1/query", "not an object") // one 400 for the error rate

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	decode(t, resp, &st)
	w := st.Window
	if w.Seconds != 60 || len(w.QPSSeries) != 60 {
		t.Fatalf("window shape %+v", w)
	}
	if w.Requests != 4 || w.Errors != 1 {
		t.Errorf("window requests %d errors %d", w.Requests, w.Errors)
	}
	if w.ErrorRate != 0.25 || w.QPS <= 0 || w.P50LatencyUsec <= 0 {
		t.Errorf("window rates %+v", w)
	}
	if w.LoadBalance < 1 {
		t.Errorf("window load balance %v", w.LoadBalance)
	}
	var tail int64
	for _, n := range w.QPSSeries {
		tail += n
	}
	if tail != 4 {
		t.Errorf("series sums to %d, want 4", tail)
	}

	met, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer met.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, met.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, metric := range []string{
		"evprop_window_qps", "evprop_window_error_rate",
		"evprop_window_latency_seconds{quantile=\"0.99\"}",
		"evprop_flightrecorder_recorded_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %s", metric)
		}
	}
}

// TestRequestTimeout sets a deadline so small the propagation cannot finish;
// the engine must observe it and the server map it to 504.
func TestRequestTimeout(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	srv.timeout = time.Nanosecond
	resp := post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}

// TestServeGracefulShutdown drives the real serve loop: cancel the context
// (as SIGINT would) and expect a clean, prompt return after in-flight
// requests drain.
func TestServeGracefulShutdown(t *testing.T) {
	srv, err := newServer(evprop.Asia(), evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, srv.log) }()

	url := "http://" + ln.Addr().String()
	resp := post(t, url+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
	srv.close()
}
