// Command evserve serves exact inference over HTTP. Requests propagate
// concurrently on one shared engine — handlers take no lock — and each
// query costs exactly one evidence propagation.
//
//	evserve -network asia -addr :8080
//	evserve -bif model.bif -log json -request-timeout 5s
//
// Versioned endpoints (JSON):
//
//	GET  /v1/model  → {"variables": [{"name": "...", "states": n}, …]}
//	POST /v1/query  ← {"evidence": {"XRay": 1}, "query": ["Lung"]}
//	                → {"p_evidence": 0.11, "posteriors": {"Lung": [0.51, 0.49]}}
//	POST /v1/batch  ← {"queries": [{"evidence": …, "query": …}, …]}
//	                → {"results": [{"p_evidence": …, "posteriors": …}, …]}
//	POST /v1/mpe    ← {"evidence": {"XRay": 1}}
//	                → {"assignment": {"Lung": 1, …}, "probability": 0.37}
//	POST /v1/dsep   ← {"x": ["Asia"], "y": ["Smoke"], "z": []}
//	                → {"separated": true}
//	GET  /v1/stats  → request counters, latency percentiles, 60 s window
//	GET  /v1/metrics → Prometheus text exposition of the same
//	GET  /v1/stream → Server-Sent Events, one stats+gauges snapshot/second
//	                (the feed evtop renders)
//	GET  /v1/healthz → liveness: build info, go version, uptime
//	GET  /v1/readyz  → readiness: 200 while serving, 503 once drain begins
//	GET  /v1/debug/flightrecorder → recent query ring + slow-query captures;
//	                ?id=q-… filters to one query ID
//
// The pre-/v1 paths /model, /query, /mpe and /dsep remain as aliases, and
// -pprof additionally exposes net/http/pprof under /debug/pprof/.
//
// Repeated-evidence traffic is served from a shared result cache
// (-cache-size, on by default) with singleflight collapsing of concurrent
// identical queries, and -batch-window additionally coalesces same-evidence
// /v1/batch sub-queries arriving within the window into one propagation.
//
// Every response carries an X-Query-ID header (minted per request, or echoed
// from the client's own X-Query-ID when it is ≤64 bytes of [A-Za-z0-9._:-];
// anything else is replaced with a generated ID) that also tags the engine's
// flight recorder entry and the request's slog access-log record, so one ID
// correlates all three. SIGINT/SIGTERM drain in-flight propagations before
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evprop"
	"evprop/internal/buildinfo"
)

// shutdownGrace bounds how long a drain may take once a signal arrives.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		network  = flag.String("network", "asia", "network: asia, sprinkler, student, random")
		bifFile  = flag.String("bif", "", "load the network from a BIF file")
		nodes    = flag.Int("nodes", 30, "random network: node count")
		seed     = flag.Int64("seed", 1, "random network: seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		addr     = flag.String("addr", ":8080", "listen address")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logFmt   = flag.String("log", "text", "access-log format: text or json")
		timeout  = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")
		slowThr  = flag.Duration("slow-threshold", 0, "flight-recorder slow-query capture floor (0 = adaptive, 2×p99)")
		recorder = flag.Int("recorder-size", 0, "flight-recorder ring capacity (0 = default)")
		cacheSz  = flag.Int("cache-size", 1024, "shared-evidence result cache entries (0 = disable caching)")
		batchWin = flag.Duration("batch-window", 0, "coalesce same-evidence /v1/batch sub-queries arriving within this window (0 = off)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evserve"))
		return
	}

	logger, err := newLogger(*logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	bn, err := loadNetwork(*network, *bifFile, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	srv, err := newServer(bn, evprop.Options{
		Workers:            *workers,
		SlowQueryThreshold: *slowThr,
		FlightRecorderSize: *recorder,
		CacheSize:          *cacheSz,
		// Worker pprof labels are readable only through /debug/pprof/, so
		// they ride the same flag and cost nothing when it is off.
		PprofLabels: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	srv.pprofEnabled = *pprofOn
	srv.log = logger
	srv.timeout = *timeout
	if *batchWin > 0 {
		srv.co = newCoalescer(*batchWin)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	logger.Info("evserve: listening",
		slog.Int("variables", len(bn.Variables())),
		slog.String("addr", ln.Addr().String()))
	srv.startSampler()
	srv.ready.Store(true)
	err = serve(ctx, ln, srv, logger)
	srv.beginDrain() // listener-failure path: Shutdown never ran
	srv.eng.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	logger.Info("evserve: stopped")
}

// newLogger builds the process logger in the requested access-log format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text or json)", format)
	}
}

// serve runs the HTTP server until the listener fails or ctx is canceled
// (SIGINT/SIGTERM in main), then drains in-flight requests for up to
// shutdownGrace before returning.
func serve(ctx context.Context, ln net.Listener, srv *server, logger *slog.Logger) error {
	hs := &http.Server{
		Handler: srv.mux(),
		// Bound header reads so an idle half-open connection cannot pin a
		// goroutine forever; request bodies stay unbounded because batch
		// payloads are legitimately large.
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Shutdown's first act is to run these callbacks: readyz flips to 503 and
	// every /v1/stream handler unblocks, so long-lived streams cannot pin the
	// drain until its grace deadline.
	hs.RegisterOnShutdown(srv.beginDrain)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("evserve: draining in-flight requests", slog.Duration("grace", shutdownGrace))
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// The grace period ran out; close the stragglers hard.
		hs.Close()
		return err
	}
	return nil
}

func loadNetwork(kind, bifFile string, nodes int, seed int64) (*evprop.Network, error) {
	if bifFile != "" {
		f, err := os.Open(bifFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		net, _, err := evprop.ParseBIF(f)
		return net, err
	}
	switch kind {
	case "asia":
		return evprop.Asia(), nil
	case "sprinkler":
		return evprop.Sprinkler(), nil
	case "student":
		return evprop.Student(), nil
	case "random":
		return evprop.RandomNetwork(nodes, 2, 3, seed), nil
	default:
		return nil, fmt.Errorf("unknown network %q", kind)
	}
}
