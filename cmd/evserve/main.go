// Command evserve serves exact inference over HTTP for many models at
// once. Models live in a registry: each is compiled to its own engine in
// the background and published by an atomic pointer swap, so uploads and
// hot reloads never pause serving — new queries route to the new version
// while in-flight queries drain against the old one. Handlers take no
// lock and each query costs exactly one evidence propagation.
//
//	evserve -network asia -addr :8080
//	evserve -models-dir ./models -log json -request-timeout 5s
//
// Model management (JSON):
//
//	GET    /v1/models                 → {"models": [{"name": …, "state": "ready", "version": 3, …}, …]}
//	GET    /v1/models/{name}          → model info + {"variables": [{"name": "...", "states": n}, …]}
//	PUT    /v1/models/{name}          ← a BIF or XMLBIF document (sniffed); ?wait=1 blocks for the compile
//	DELETE /v1/models/{name}          → drains in-flight queries, then releases the engine
//	POST   /v1/models/{name}/reload   → recompile from the retained source (re-reads file sources); ?wait=1 blocks
//	GET    /v1/models/{name}/stats    → that model's counters, latency, window, cache, gauges
//
// Model-scoped queries:
//
//	POST /v1/models/{name}/query  ← {"evidence": {"XRay": 1}, "query": ["Lung"]}
//	                              → {"p_evidence": 0.11, "posteriors": {"Lung": [0.51, 0.49]}, "model": …, "version": …}
//	POST /v1/models/{name}/batch  ← {"queries": [{"evidence": …, "query": …}, …]}
//	POST /v1/models/{name}/mpe    ← {"evidence": {"XRay": 1}}
//	POST /v1/models/{name}/dsep   ← {"x": ["Asia"], "y": ["Smoke"], "z": []}
//
// The single-model routes /v1/model, /v1/query, /v1/batch, /v1/mpe and
// /v1/dsep alias onto the model named "default" (what -network/-bif
// boot). The pre-/v1 paths /model, /query, /mpe and /dsep remain too but
// are deprecated: responses carry Deprecation and Sunset headers, and
// /v1/stats counts their traffic as legacy_requests.
//
// Introspection:
//
//	GET /v1/stats  → request counters (global + per model), latency percentiles, 60 s window
//	GET /v1/metrics → Prometheus text exposition, incl. per-model labeled series
//	GET /v1/stream → Server-Sent Events, one stats+gauges snapshot/second (the feed evtop renders)
//	GET /v1/healthz → liveness: build info, go version, uptime
//	GET /v1/readyz  → readiness: 200 while serving, 503 once drain begins
//	GET /v1/audit  → audit pipeline status: counters, chain head, segment totals
//	GET /v1/debug/flightrecorder → recent query ring + slow-query captures;
//	                ?model= selects a model, ?id=q-… filters to one query ID,
//	                ?since=<seq>&limit=N pages oldest-first (next_since cursor)
//	GET /v1/debug/trace → recently kept trace IDs; ?id=<32-hex> returns one
//	                kept trace's span tree (see cmd/evtrace for a waterfall)
//
// Distributed tracing is on by default (-trace): every request runs under
// a span arena, honors a caller's W3C traceparent/tracestate (the trace ID
// survives end to end and is echoed as X-Trace-ID and in error envelopes),
// and tail sampling keeps slow, failed and caller-flagged traces plus a
// -trace-sample head-sampled remainder. -otlp-endpoint additionally pushes
// kept traces as OTLP/JSON to a collector.
//
// Errors are uniform: every failure answers
// {"error": {"code": …, "message": …, "query_id": …}} with the status
// from one typed-error mapping table (unknown variable/impossible
// evidence → 422, unknown model → 404, overload → 429, timeout → 504).
//
// Repeated-evidence traffic is served from a per-model result cache
// (-cache-size, on by default) with singleflight collapsing of concurrent
// identical queries, and -batch-window additionally coalesces same-evidence
// /v1/batch sub-queries arriving within the window into one propagation.
// -max-inflight bounds concurrently admitted propagating requests (429
// beyond it).
//
// -audit-dir enables the durable query audit: every completed query and MPE
// request is spilled asynchronously into Merkle-chained, tamper-evident
// segment files (-audit-batch and -audit-rotate tune batching and rotation;
// see internal/audit and cmd/evreplay).
//
// Every response carries an X-Query-ID header (minted per request, or echoed
// from the client's own X-Query-ID when it is ≤64 bytes of [A-Za-z0-9._:-];
// anything else is replaced with a generated ID) that also tags the engine's
// flight recorder entry and the request's slog access-log record, so one ID
// correlates all three. SIGINT/SIGTERM drain in-flight propagations before
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evprop"
	"evprop/internal/audit"
	"evprop/internal/buildinfo"
	"evprop/internal/obs/trace"
	"evprop/internal/registry"
)

// shutdownGrace bounds how long a drain may take once a signal arrives.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		network   = flag.String("network", "asia", "default model: asia, sprinkler, student, random")
		bifFile   = flag.String("bif", "", "load the default model from a BIF file")
		modelsDir = flag.String("models-dir", "", "serve every *.bif/*.xml/*.xmlbif in this directory, named by file basename")
		nodes     = flag.Int("nodes", 30, "random network: node count")
		seed      = flag.Int64("seed", 1, "random network: seed")
		workers   = flag.Int("workers", 0, "worker goroutines per model (0 = GOMAXPROCS)")
		addr      = flag.String("addr", ":8080", "listen address")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logFmt    = flag.String("log", "text", "access-log format: text or json")
		timeout   = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")
		inflight  = flag.Int("max-inflight", 0, "reject propagating requests beyond this many in flight with 429 (0 = unlimited)")
		slowThr   = flag.Duration("slow-threshold", 0, "flight-recorder slow-query capture floor (0 = adaptive, 2×p99)")
		recorder  = flag.Int("recorder-size", 0, "flight-recorder ring capacity (0 = default)")
		cacheSz   = flag.Int("cache-size", 1024, "per-model shared-evidence result cache entries (0 = disable caching)")
		batchWin  = flag.Duration("batch-window", 0, "coalesce same-evidence /v1/batch sub-queries arriving within this window (0 = off)")
		auditDir  = flag.String("audit-dir", "", "spill every query into Merkle-chained audit segments in this directory (empty = off)")
		auditBat  = flag.Int("audit-batch", 0, "audit records per flushed batch (0 = default)")
		auditRot  = flag.Int64("audit-rotate", 0, "rotate audit segments beyond this many bytes (0 = default)")
		lazyProp  = flag.Bool("lazy", false, "zero-aware lazy propagation: precalibrate each model once, then propagate only through the part of the tree each query's evidence disturbs")
		traceOn   = flag.Bool("trace", true, "distributed tracing: per-request span trees with W3C traceparent propagation, tail-sampled into GET /v1/debug/trace")
		traceRate = flag.Float64("trace-sample", 0.01, "head-sampling rate for traces not kept by tail rules (slow/error/caller-flagged are always kept)")
		otlpEndp  = flag.String("otlp-endpoint", "", "push kept traces as OTLP/JSON to this collector URL (e.g. http://collector:4318/v1/traces; empty = no export)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evserve"))
		return
	}

	logger, err := newLogger(*logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	opts := evprop.Options{
		Workers:            *workers,
		SlowQueryThreshold: *slowThr,
		FlightRecorderSize: *recorder,
		CacheSize:          *cacheSz,
		// Worker pprof labels are readable only through /debug/pprof/, so
		// they ride the same flag and cost nothing when it is off.
		PprofLabels: *pprofOn,
		// Auditing implies full evidence capture in the flight recorder:
		// the same queries are being persisted anyway, and replay tooling
		// cross-references the two by evidence signature.
		RecordEvidence: *auditDir != "",
		Lazy:           *lazyProp,
	}
	srv := newMultiServer(opts)
	if *auditDir != "" {
		store, err := audit.OpenFileStore(*auditDir, audit.FileStoreOptions{MaxSegmentBytes: *auditRot})
		if err != nil {
			srv.close()
			fmt.Fprintln(os.Stderr, "evserve:", err)
			os.Exit(1)
		}
		srv.audStore = store
		srv.aud, err = audit.NewWriter(store, audit.Config{BatchSize: *auditBat})
		if err != nil {
			srv.close()
			fmt.Fprintln(os.Stderr, "evserve:", err)
			os.Exit(1)
		}
		srv.auditDir = *auditDir
	}
	if *modelsDir != "" {
		// Directory boot: one model per file, all compiled concurrently.
		err = srv.reg.LoadDir(*modelsDir)
	} else {
		// Single-model boot: the model is named "default" and its source is
		// retained, so POST /v1/models/default/reload works for file- and
		// generator-backed defaults too.
		err = srv.reg.LoadSync(defaultModel, bootSource(*network, *bifFile, *nodes, *seed))
	}
	if err != nil {
		srv.close()
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	srv.pprofEnabled = *pprofOn
	srv.log = logger
	srv.timeout = *timeout
	srv.maxInflight = int64(*inflight)
	if *batchWin > 0 {
		srv.co = newCoalescer(*batchWin)
	}
	if *traceOn {
		srv.tracer = &trace.Tracer{
			SampleRate: *traceRate,
			Store:      trace.NewStore(trace.DefaultStoreSize),
			// Tail sampling's "slow" rule piggybacks the flight recorder's
			// adaptive 2×p99 threshold (or the -slow-threshold floor).
			Slow: func() time.Duration {
				return time.Duration(srv.defaultEngine().FlightRecorderStats().SlowThresholdUsec * 1e3)
			},
		}
		if *otlpEndp != "" {
			srv.tracer.Exporter = trace.NewExporter(*otlpEndp, "evserve")
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.close()
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	logger.Info("evserve: listening",
		slog.Int("models", len(srv.reg.Names())),
		slog.String("addr", ln.Addr().String()))
	srv.startSampler()
	srv.ready.Store(true)
	err = serve(ctx, ln, srv, logger)
	srv.beginDrain() // listener-failure path: Shutdown never ran
	srv.close()
	if srv.tracer != nil {
		// Flush whatever the OTLP exporter has queued (nil-safe).
		srv.tracer.Exporter.Close()
	}
	if srv.aud != nil {
		// Drain and seal the audit log after the last request finished; a
		// failed final flush is worth a log line but not a dirty exit.
		if cerr := srv.aud.Close(); cerr != nil {
			logger.Error("evserve: audit close", slog.String("err", cerr.Error()))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	logger.Info("evserve: stopped")
}

// newLogger builds the process logger in the requested access-log format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text or json)", format)
	}
}

// serve runs the HTTP server until the listener fails or ctx is canceled
// (SIGINT/SIGTERM in main), then drains in-flight requests for up to
// shutdownGrace before returning.
func serve(ctx context.Context, ln net.Listener, srv *server, logger *slog.Logger) error {
	hs := &http.Server{
		Handler: srv.mux(),
		// Bound header reads so an idle half-open connection cannot pin a
		// goroutine forever; request bodies stay unbounded because batch
		// payloads are legitimately large.
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Shutdown's first act is to run these callbacks: readyz flips to 503 and
	// every /v1/stream handler unblocks, so long-lived streams cannot pin the
	// drain until its grace deadline.
	hs.RegisterOnShutdown(srv.beginDrain)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("evserve: draining in-flight requests", slog.Duration("grace", shutdownGrace))
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// The grace period ran out; close the stragglers hard.
		hs.Close()
		return err
	}
	return nil
}

// bootSource maps the single-model boot flags onto a registry Source, so
// the default model's retained source supports /reload.
func bootSource(kind, bifFile string, nodes int, seed int64) registry.Source {
	if bifFile != "" {
		return registry.FileSource(bifFile)
	}
	if kind == "random" {
		return registry.RandomSource(nodes, seed)
	}
	return registry.BuiltinSource(kind)
}
