// Command evserve serves exact inference over HTTP. Requests propagate
// concurrently on one shared engine — handlers take no lock — and each
// query costs exactly one evidence propagation.
//
//	evserve -network asia -addr :8080
//	evserve -bif model.bif
//
// Versioned endpoints (JSON):
//
//	GET  /v1/model  → {"variables": [{"name": "...", "states": n}, …]}
//	POST /v1/query  ← {"evidence": {"XRay": 1}, "query": ["Lung"]}
//	                → {"p_evidence": 0.11, "posteriors": {"Lung": [0.51, 0.49]}}
//	POST /v1/batch  ← {"queries": [{"evidence": …, "query": …}, …]}
//	                → {"results": [{"p_evidence": …, "posteriors": …}, …]}
//	POST /v1/mpe    ← {"evidence": {"XRay": 1}}
//	                → {"assignment": {"Lung": 1, …}, "probability": 0.37}
//	POST /v1/dsep   ← {"x": ["Asia"], "y": ["Smoke"], "z": []}
//	                → {"separated": true}
//	GET  /v1/stats  → request counters, scheduler invocations, latency
//
// The pre-/v1 paths /model, /query, /mpe and /dsep remain as aliases.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"evprop"
)

func main() {
	var (
		network = flag.String("network", "asia", "network: asia, sprinkler, student, random")
		bifFile = flag.String("bif", "", "load the network from a BIF file")
		nodes   = flag.Int("nodes", 30, "random network: node count")
		seed    = flag.Int64("seed", 1, "random network: seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		addr    = flag.String("addr", ":8080", "listen address")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	net, err := loadNetwork(*network, *bifFile, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	srv, err := newServer(net, evprop.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	srv.pprofEnabled = *pprofOn
	log.Printf("evserve: %d variables on %s", len(net.Variables()), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

func loadNetwork(kind, bifFile string, nodes int, seed int64) (*evprop.Network, error) {
	if bifFile != "" {
		f, err := os.Open(bifFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		net, _, err := evprop.ParseBIF(f)
		return net, err
	}
	switch kind {
	case "asia":
		return evprop.Asia(), nil
	case "sprinkler":
		return evprop.Sprinkler(), nil
	case "student":
		return evprop.Student(), nil
	case "random":
		return evprop.RandomNetwork(nodes, 2, 3, seed), nil
	default:
		return nil, fmt.Errorf("unknown network %q", kind)
	}
}
