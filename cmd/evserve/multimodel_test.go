package main

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"evprop"
	evclient "evprop/client"
)

// mmRainNet builds a two-variable network whose posterior P(Rain | Wet=1)
// is controlled by pRain, so different models (and different versions of
// one model) give distinguishable answers.
func mmRainNet(pRain float64) *evprop.Network {
	n := evprop.NewNetwork()
	n.MustAddVariable("Rain", 2, nil, []float64{1 - pRain, pRain})
	n.MustAddVariable("Wet", 2, []string{"Rain"}, []float64{
		0.9, 0.1,
		0.2, 0.8,
	})
	return n
}

// mmRainBIF renders mmRainNet(pRain) as a BIF document for uploads.
func mmRainBIF(t *testing.T, pRain float64) []byte {
	t.Helper()
	var b strings.Builder
	if err := mmRainNet(pRain).WriteBIF(&b, "rain", nil); err != nil {
		t.Fatal(err)
	}
	return []byte(b.String())
}

func mmOracle(t *testing.T, pRain float64) float64 {
	t.Helper()
	m, err := mmRainNet(pRain).ExactMarginal("Rain", evprop.Evidence{"Wet": 1})
	if err != nil {
		t.Fatal(err)
	}
	return m[1]
}

// TestMultiModelLifecycle drives the full model lifecycle through the Go
// client: upload → query → replace → reload → delete, plus the default
// model staying untouched throughout.
func TestMultiModelLifecycle(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	c := evclient.New(ts.URL)
	ctx := context.Background()

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "default" || models[0].State != "ready" {
		t.Fatalf("initial models %+v", models)
	}

	info, err := c.Upload(ctx, "rain", mmRainBIF(t, 0.2), true)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "ready" || info.Version != 1 {
		t.Fatalf("uploaded model %+v", info)
	}
	q, err := c.Query(ctx, "rain", evclient.Evidence{"Wet": 1}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.Posteriors["Rain"][1], mmOracle(t, 0.2); got != want {
		t.Errorf("posterior %v, oracle %v", got, want)
	}
	if q.Model != "rain" || q.Version != 1 {
		t.Errorf("answer attribution %q v%d", q.Model, q.Version)
	}

	schema, err := c.Model(ctx, "rain")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.VariableList) != 2 {
		t.Errorf("schema %+v", schema.VariableList)
	}

	// Replacing the model bumps the version and changes the answer.
	if info, err = c.Upload(ctx, "rain", mmRainBIF(t, 0.7), true); err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Errorf("replaced version %d, want 2", info.Version)
	}
	if q, err = c.Query(ctx, "rain", evclient.Evidence{"Wet": 1}, "Rain"); err != nil {
		t.Fatal(err)
	}
	if got, want := q.Posteriors["Rain"][1], mmOracle(t, 0.7); got != want {
		t.Errorf("post-replace posterior %v, oracle %v", got, want)
	}

	// Reload recompiles the retained source: version 3, same answer.
	if info, err = c.Reload(ctx, "rain", true); err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 {
		t.Errorf("reloaded version %d, want 3", info.Version)
	}

	// Delete; subsequent queries 404 with the typed sentinel.
	if err := c.Delete(ctx, "rain"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "rain", evclient.Evidence{"Wet": 1}); !errors.Is(err, evclient.ErrModelNotFound) {
		t.Errorf("post-delete error = %v, want ErrModelNotFound", err)
	}
	// The default model never noticed any of this.
	if _, err := c.Query(ctx, evclient.DefaultModel, evclient.Evidence{"XRay": 1}, "Lung"); err != nil {
		t.Errorf("default model: %v", err)
	}
}

// TestErrorEnvelope is the envelope-conformance test: every failure mode
// answers the uniform JSON envelope with the table's status and code.
func TestErrorEnvelope(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})

	check := func(t *testing.T, resp *http.Response, status int, code string, wantID bool) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("status %d, want %d", resp.StatusCode, status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type %q", ct)
		}
		var env errorEnvelope
		decode(t, resp, &env)
		if env.Error.Code != code {
			t.Errorf("code %q, want %q", env.Error.Code, code)
		}
		if env.Error.Message == "" {
			t.Error("empty message")
		}
		if wantID && env.Error.QueryID == "" {
			t.Error("missing query_id")
		}
		if wantID && len(env.Error.TraceID) != 32 {
			t.Errorf("trace_id %q, want 32-hex (tracing is on in testServerFull)", env.Error.TraceID)
		}
	}

	t.Run("model_not_found", func(t *testing.T) {
		resp := post(t, ts.URL+"/v1/models/nope/query", queryRequest{})
		check(t, resp, http.StatusNotFound, "model_not_found", true)
	})
	t.Run("unknown_variable", func(t *testing.T) {
		resp := post(t, ts.URL+"/v1/query", queryRequest{Query: []string{"nope"}})
		check(t, resp, http.StatusUnprocessableEntity, "unknown_variable", true)
	})
	t.Run("zero_probability_evidence", func(t *testing.T) {
		// Asia's CPTs are strictly positive, so upload a deterministic
		// two-node model and observe its impossible state.
		det := evprop.NewNetwork()
		det.MustAddVariable("Cause", 2, nil, []float64{1, 0})
		det.MustAddVariable("Effect", 2, []string{"Cause"}, []float64{1, 0, 0, 1})
		var b strings.Builder
		if err := det.WriteBIF(&b, "det", nil); err != nil {
			t.Fatal(err)
		}
		c := evclient.New(ts.URL)
		if _, err := c.Upload(context.Background(), "det", []byte(b.String()), true); err != nil {
			t.Fatal(err)
		}
		resp := post(t, ts.URL+"/v1/models/det/mpe", mpeRequest{Evidence: evprop.Evidence{"Effect": 1}})
		check(t, resp, http.StatusUnprocessableEntity, "zero_probability_evidence", true)
	})
	t.Run("bad_model_name", func(t *testing.T) {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/bad!name", strings.NewReader("network x {}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		check(t, resp, http.StatusUnprocessableEntity, "bad_model_name", true)
	})
	t.Run("bad_request", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{oops"))
		if err != nil {
			t.Fatal(err)
		}
		check(t, resp, http.StatusBadRequest, "bad_request", true)
	})
	t.Run("overloaded", func(t *testing.T) {
		srv.maxInflight = 1
		srv.inflight.Add(1) // simulate one admitted request holding the slot
		defer func() { srv.maxInflight = 0; srv.inflight.Add(-1) }()
		resp := post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
		check(t, resp, http.StatusTooManyRequests, "overloaded", true)
	})
	t.Run("client_decodes_envelope", func(t *testing.T) {
		c := evclient.New(ts.URL)
		_, err := c.Query(context.Background(), "default", nil, "nope")
		if !errors.Is(err, evclient.ErrUnknownVariable) {
			t.Fatalf("client error = %v, want ErrUnknownVariable", err)
		}
		var apiErr *evclient.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity || apiErr.QueryID == "" {
			t.Errorf("decoded %+v", apiErr)
		}
	})
}

// TestHotSwapRaceHTTP is the serving-layer half of the loss-free reload
// guarantee: clients hammer one model over HTTP while uploads keep
// swapping its versions between two distinguishable networks. Zero failed
// queries, and every answer bit-identical to one version's oracle.
func TestHotSwapRaceHTTP(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	c := evclient.New(ts.URL)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "m", mmRainBIF(t, 0.2), true); err != nil {
		t.Fatal(err)
	}
	oracleA, oracleB := mmOracle(t, 0.2), mmOracle(t, 0.7)
	docA, docB := mmRainBIF(t, 0.2), mmRainBIF(t, 0.7)

	const (
		clients   = 6
		perClient = 60
	)
	var wg sync.WaitGroup
	var queries, swaps atomic.Int64
	stop := make(chan struct{})
	errc := make(chan error, clients+1)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q, err := c.Query(ctx, "m", evclient.Evidence{"Wet": 1}, "Rain")
				if err != nil {
					errc <- err
					return
				}
				queries.Add(1)
				if p := q.Posteriors["Rain"][1]; p != oracleA && p != oracleB {
					errc <- errors.New("posterior matches neither version's oracle")
					return
				}
			}
		}()
	}
	var swapWg sync.WaitGroup
	swapWg.Add(1)
	go func() {
		defer swapWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			doc := docA
			if i%2 == 0 {
				doc = docB
			}
			if _, err := c.Upload(ctx, "m", doc, true); err != nil {
				errc <- err
				return
			}
			swaps.Add(1)
		}
	}()
	wg.Wait()
	close(stop)
	swapWg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := queries.Load(); got != clients*perClient {
		t.Fatalf("%d queries answered, want %d (lossy swap)", got, clients*perClient)
	}
	if swaps.Load() == 0 {
		t.Fatal("no version swaps happened under load")
	}
	t.Logf("queries=%d swaps=%d", queries.Load(), swaps.Load())
}

// TestPerModelCacheIsolationHTTP is the differential check over HTTP: two
// models share variable names and evidence (identical evidence
// signatures), caches on, interleaved traffic — warm cached answers must
// always match their own model's oracle.
func TestPerModelCacheIsolationHTTP(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 64})
	c := evclient.New(ts.URL)
	ctx := context.Background()
	oracle := map[string]float64{}
	for name, p := range map[string]float64{"a": 0.2, "b": 0.7} {
		if _, err := c.Upload(ctx, name, mmRainBIF(t, p), true); err != nil {
			t.Fatal(err)
		}
		oracle[name] = mmOracle(t, p)
	}
	for i := 0; i < 10; i++ {
		for _, name := range []string{"a", "b"} {
			q, err := c.Query(ctx, name, evclient.Evidence{"Wet": 1}, "Rain")
			if err != nil {
				t.Fatal(err)
			}
			if got := q.Posteriors["Rain"][1]; got != oracle[name] {
				t.Fatalf("round %d: model %q posterior %v, own oracle %v (cross-model cache hit?)",
					i, name, got, oracle[name])
			}
		}
	}
	// Both models' caches were actually consulted: the isolation above was
	// proven on warm caches, not on misses.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int64{}
	for _, row := range stats.Models {
		hits[row.Name] = row.CacheHits
	}
	for _, name := range []string{"a", "b"} {
		if hits[name] == 0 {
			t.Errorf("model %q: cache never hit", name)
		}
	}
}

// TestDeprecationHeaders: the unversioned aliases answer with Deprecation
// and Sunset headers and count into legacy_requests; /v1 routes carry
// neither.
func TestDeprecationHeaders(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	legacy := post(t, ts.URL+"/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if legacy.StatusCode != http.StatusOK {
		t.Fatalf("legacy query status %d", legacy.StatusCode)
	}
	if legacy.Header.Get("Deprecation") == "" || legacy.Header.Get("Sunset") == "" {
		t.Errorf("legacy headers %+v", legacy.Header)
	}
	if link := legacy.Header.Get("Link"); !strings.Contains(link, "/v1/models/default/query") {
		t.Errorf("Link %q", link)
	}
	v1 := post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if v1.Header.Get("Deprecation") != "" || v1.Header.Get("Sunset") != "" {
		t.Error("versioned route carries deprecation headers")
	}
	scoped := post(t, ts.URL+"/v1/models/default/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if scoped.StatusCode != http.StatusOK {
		t.Fatalf("scoped query status %d", scoped.StatusCode)
	}
	var st statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp, &st)
	if st.LegacyRequests != 1 {
		t.Errorf("legacy_requests %d, want 1", st.LegacyRequests)
	}
	if st.Queries != 3 {
		t.Errorf("queries %d, want 3", st.Queries)
	}
}

// TestModelScopedStats: per-model counters accumulate under the model
// that served the traffic, and /v1/models/{name}/stats reports them.
func TestModelScopedStats(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 16})
	c := evclient.New(ts.URL)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "m", mmRainBIF(t, 0.5), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, "m", evclient.Evidence{"Wet": 1}, "Rain"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(ctx, evclient.DefaultModel, evclient.Evidence{"XRay": 1}, "Lung"); err != nil {
		t.Fatal(err)
	}
	var ms modelStatsResponse
	resp, err := http.Get(ts.URL + "/v1/models/m/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp, &ms)
	if ms.Queries != 3 {
		t.Errorf("model m queries %d, want 3", ms.Queries)
	}
	if ms.Propagations == 0 {
		t.Error("model m propagations 0")
	}
	// Unknown model's stats 404 through the envelope.
	resp2, err := http.Get(ts.URL + "/v1/models/ghost/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("ghost stats status %d", resp2.StatusCode)
	}
	// The global rows attribute traffic per model.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]evclient.ModelStatsInline{}
	for _, row := range stats.Models {
		byName[row.Name] = row
	}
	if byName["m"].Queries != 3 || byName["default"].Queries != 1 {
		t.Errorf("per-model rows %+v", stats.Models)
	}
}
