package main

import (
	"context"
	"maps"
	"net/http"
	"time"

	"evprop"
	"evprop/internal/audit"
	"evprop/internal/obs"
	"evprop/internal/registry"
)

// Durable query auditing: with -audit-dir set, every completed query and
// MPE request — answered or failed — is recorded with enough detail to
// re-execute it (model, version, evidence, requested variables) and to
// check the answer it got (P(e), posteriors, assignment). Records flow
// through a wait-free ring into Merkle-chained batches on disk (see
// internal/audit); the enqueue below is the only cost the serving hot
// path pays, and under backpressure records are dropped and counted,
// never blocked on.
//
// evreplay reads the resulting segments: -mode verify checks the chain,
// -mode load re-drives the recorded traffic, -mode diff re-executes every
// query and compares answers bit for bit.

// auditQuery enqueues one completed (or failed) query. resp may be nil
// when qerr is set. cached marks queries served without their own
// propagation (result-cache hit, singleflight or batch-window rider).
func (s *server) auditQuery(ctx context.Context, v *registry.Version, req queryRequest, resp *queryResponse, cached bool, elapsed time.Duration, qerr error) {
	if s.aud == nil {
		return
	}
	rec := s.newAuditRecord(ctx, audit.KindQuery, v, req.Evidence, elapsed, cached)
	rec.Query = append([]string(nil), req.Query...)
	if qerr != nil {
		rec.Error = qerr.Error()
	} else {
		rec.PEvidence = resp.PEvidence
		rec.Posteriors = resp.Posteriors
	}
	s.aud.Enqueue(rec)
}

// auditMPE enqueues one completed (or failed) MPE request.
func (s *server) auditMPE(ctx context.Context, v *registry.Version, ev evprop.Evidence, assignment map[string]int, p float64, elapsed time.Duration, qerr error) {
	if s.aud == nil {
		return
	}
	rec := s.newAuditRecord(ctx, audit.KindMPE, v, ev, elapsed, false)
	if qerr != nil {
		rec.Error = qerr.Error()
	} else {
		rec.Assignment = assignment
		rec.Probability = p
	}
	s.aud.Enqueue(rec)
}

// newAuditRecord fills the fields every audit record shares. The evidence
// map is cloned — the writer owns the record after Enqueue, and request
// maps must not be shared with the asynchronous encoder. Posteriors and
// assignments are already fresh per-request maps, so the specific record
// builders attach them as is.
func (s *server) newAuditRecord(ctx context.Context, kind uint8, v *registry.Version, ev evprop.Evidence, elapsed time.Duration, cached bool) *audit.Record {
	ri := reqInfoFrom(ctx)
	return &audit.Record{
		TimeUnixNano: time.Now().UnixNano(),
		Kind:         kind,
		ID:           evprop.QueryIDFrom(ctx),
		Model:        ri.modelName(),
		Version:      v.ID,
		Cached:       cached,
		ElapsedUsec:  float64(elapsed.Nanoseconds()) / 1e3,
		Evidence:     maps.Clone(ev),
	}
}

// auditStats is the audit section of /v1/stats and the GET /v1/audit body.
type auditStats struct {
	// Enabled is false when the server runs without -audit-dir; every other
	// field is zero then.
	Enabled bool `json:"enabled"`
	// Dir is the segment directory.
	Dir string `json:"dir,omitempty"`
	audit.WriterStats
	// Segments and Bytes describe the on-disk store.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

func (s *server) auditStats() auditStats {
	if s.aud == nil {
		return auditStats{}
	}
	st := auditStats{Enabled: true, Dir: s.auditDir, WriterStats: s.aud.Stats()}
	if s.audStore != nil {
		fs := s.audStore.Status()
		st.Segments, st.Bytes = fs.Segments, fs.Bytes
	}
	return st
}

// handleAudit serves GET /v1/audit: the audit pipeline's configuration,
// counters and chain head. It answers with Enabled false (200) when
// auditing is off, so probes need no special-casing.
func (s *server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	s.writeJSON(w, s.auditStats())
}

// writeAuditMetrics renders the audit pipeline's Prometheus series. The
// series exist (at zero) even with auditing off, so dashboards and alerts
// can be authored before the flag is ever set.
func (s *server) writeAuditMetrics(w http.ResponseWriter) {
	st := s.auditStats()
	obs.WriteHeader(w, "evprop_audit_enqueued_total", "Audit records enqueued for spilling.", "counter")
	obs.WriteSample(w, "evprop_audit_enqueued_total", nil, float64(st.Enqueued))
	obs.WriteHeader(w, "evprop_audit_dropped_total", "Audit records dropped under backpressure or failed appends.", "counter")
	obs.WriteSample(w, "evprop_audit_dropped_total", nil, float64(st.Dropped))
	obs.WriteHeader(w, "evprop_audit_spilled_total", "Audit records flushed into durable batches.", "counter")
	obs.WriteSample(w, "evprop_audit_spilled_total", nil, float64(st.Spilled))
	obs.WriteHeader(w, "evprop_audit_batches_total", "Audit batches appended to the store.", "counter")
	obs.WriteSample(w, "evprop_audit_batches_total", nil, float64(st.Batches))
	obs.WriteHeader(w, "evprop_audit_store_errors_total", "Failed audit store appends.", "counter")
	obs.WriteSample(w, "evprop_audit_store_errors_total", nil, float64(st.StoreErrors))
	obs.WriteHeader(w, "evprop_audit_flush_seconds_total", "Cumulative audit flush (store append) time.", "counter")
	obs.WriteSample(w, "evprop_audit_flush_seconds_total", nil, st.FlushTotalUsec/1e6)
	obs.WriteHeader(w, "evprop_audit_flush_max_seconds", "Slowest single audit flush.", "gauge")
	obs.WriteSample(w, "evprop_audit_flush_max_seconds", nil, st.FlushMaxUsec/1e6)
	obs.WriteHeader(w, "evprop_audit_segments", "Audit segment files on disk.", "gauge")
	obs.WriteSample(w, "evprop_audit_segments", nil, float64(st.Segments))
	obs.WriteHeader(w, "evprop_audit_segment_bytes", "Total audit log size on disk.", "gauge")
	obs.WriteSample(w, "evprop_audit_segment_bytes", nil, float64(st.Bytes))
}
