package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"evprop"
	"evprop/internal/buildinfo"
	"evprop/internal/obs"
)

// Live introspection: /v1/stream pushes one JSON snapshot per second over
// Server-Sent Events — the transport evtop consumes. Snapshots are taken by
// an obs.Sampler off the same wait-free surfaces the pull endpoints read
// (the 60 s window, the scheduler gauge surface, the cache counters), so a
// streaming dashboard costs the serving path nothing beyond one snapshot
// per second. /v1/healthz and /v1/readyz are the liveness/readiness pair:
// healthz always answers (with build info and uptime), readyz flips false
// the moment shutdown drain begins so load balancers stop routing here.

// streamInterval is the snapshot cadence of /v1/stream.
const streamInterval = time.Second

// streamSnapshot is one /v1/stream event: the last-minute traffic summary
// plus the scheduler's live gauge surface.
type streamSnapshot struct {
	// Time is when the snapshot was taken; UptimeSec is process uptime.
	Time      time.Time `json:"time"`
	UptimeSec float64   `json:"uptime_sec"`
	// QPS, ErrorRate, latency quantiles and CacheHitRate summarize the
	// sliding 60 s window (same definitions as /v1/stats).
	Requests     int64   `json:"window_requests"`
	QPS          float64 `json:"qps"`
	ErrorRate    float64 `json:"error_rate"`
	P50Usec      float64 `json:"p50_usec"`
	P99Usec      float64 `json:"p99_usec"`
	LoadBalance  float64 `json:"load_balance"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Propagations and Errors are lifetime totals (monotone counters, so
	// consumers can take rates between events).
	Propagations int64 `json:"propagations"`
	Errors       int64 `json:"errors"`
	// Scheduler names the engine's execution strategy; Workers its size.
	Scheduler string `json:"scheduler"`
	Workers   int    `json:"workers"`
	// Models is how many models the registry currently serves.
	Models int `json:"models"`
	// Gauges is the default model's live scheduler surface: GL depth,
	// active runs, and per-worker state/queue/steal/partition gauges.
	Gauges evprop.SchedulerGauges `json:"gauges"`
}

// snapshotNow assembles one stream snapshot from the wait-free surfaces.
// Traffic numbers aggregate over every model; the scheduler gauge surface
// is the default model's (the one evtop renders).
func (s *server) snapshotNow() streamSnapshot {
	ws := s.window.Snapshot()
	eng := s.defaultEngine()
	es := eng.Stats()
	return streamSnapshot{
		Time:         time.Now(),
		UptimeSec:    time.Since(s.started).Seconds(),
		Requests:     ws.Requests,
		QPS:          ws.QPS,
		ErrorRate:    ws.ErrorRate,
		P50Usec:      float64(ws.P50.Nanoseconds()) / 1e3,
		P99Usec:      float64(ws.P99.Nanoseconds()) / 1e3,
		LoadBalance:  ws.LoadBalance,
		CacheHitRate: ws.CacheHitRate,
		Propagations: s.propagationsTotal(),
		Errors:       s.stats.errors.Load(),
		Scheduler:    es.Scheduler,
		Workers:      es.Workers,
		Models:       len(s.reg.Names()),
		Gauges:       eng.SchedulerGauges(),
	}
}

// startSampler begins the 1 s snapshot cadence feeding /v1/stream.
func (s *server) startSampler() {
	s.sampler.Start()
}

// beginDrain flips the server into shutdown mode: readyz goes false and the
// sampler stops, which closes every /v1/stream subscription so the SSE
// handlers return instead of pinning http.Server.Shutdown until its grace
// deadline. Idempotent; wired to the HTTP server via RegisterOnShutdown.
func (s *server) beginDrain() {
	s.drainOnce.Do(func() {
		s.ready.Store(false)
		close(s.drain)
		s.sampler.Stop()
	})
}

// handleStream serves GET /v1/stream: text/event-stream, one `data:` event
// per second carrying a streamSnapshot, the sample sequence number as the
// SSE event id. The first event is written immediately (a dashboard should
// not stare at a blank screen for a second), then the handler follows its
// sampler subscription until the client goes away or the server drains.
//
// The route deliberately bypasses instrument: a long-lived stream is not a
// request — logging it on connect and counting minutes-long "latency" into
// the QPS window would pollute both.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErrorCode(w, r, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}
	// Subscribe before the first event so no sample between it and the loop
	// is missed; a slow client skips samples (seq gaps) instead of exerting
	// backpressure on the sampler.
	ch, cancel := s.sampler.Subscribe(4)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	seq := int64(-1)
	if latest, ok := s.sampler.Latest(); ok {
		seq = latest.Seq
		if writeSSE(w, latest.Seq, latest.Data) != nil {
			return
		}
	} else if writeSSE(w, 0, s.snapshotNow()) != nil {
		return
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drain:
			return
		case sm, ok := <-ch:
			if !ok {
				return // sampler stopped: server is draining
			}
			if sm.Seq <= seq {
				continue // the initial event already covered this sample
			}
			seq = sm.Seq
			if writeSSE(w, sm.Seq, sm.Data) != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one Server-Sent-Events frame.
func writeSSE(w http.ResponseWriter, id int64, snap streamSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", id, payload)
	return err
}

// healthzResponse is the GET /v1/healthz body: liveness plus build info.
type healthzResponse struct {
	Status     string  `json:"status"`
	Version    string  `json:"version"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	UptimeSec  float64 `json:"uptime_sec"`
}

// handleHealthz is liveness: it answers 200 whenever the process can serve
// HTTP at all, including during drain (the process is alive while it
// finishes in-flight work — that is readyz's distinction to make).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	s.writeJSON(w, healthzResponse{
		Status:     "ok",
		Version:    buildinfo.Version,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		UptimeSec:  time.Since(s.started).Seconds(),
	})
}

// handleReadyz is readiness: 200 once the engine is compiled and the server
// is accepting queries, 503 before that and again as soon as shutdown drain
// begins, so load balancers pull the instance before its listener closes.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]bool{"ready": false})
		return
	}
	s.writeJSON(w, map[string]bool{"ready": true})
}

// writeGaugeMetrics renders the live gauge surface as Prometheus series —
// the /v1/metrics half of the introspection layer.
func (s *server) writeGaugeMetrics(w http.ResponseWriter) {
	gg := s.defaultEngine().SchedulerGauges()
	obs.WriteHeader(w, "evprop_sched_global_depth", "Tasks submitted to the scheduler but not yet completed.", "gauge")
	obs.WriteSample(w, "evprop_sched_global_depth", nil, float64(gg.GlobalDepth))
	obs.WriteHeader(w, "evprop_sched_active_runs", "Propagations currently in flight.", "gauge")
	obs.WriteSample(w, "evprop_sched_active_runs", nil, float64(gg.ActiveRuns))
	if len(gg.Workers) == 0 {
		return
	}
	obs.WriteHeader(w, "evprop_worker_queue_depth", "Items queued on the worker's local ready list.", "gauge")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_queue_depth", workerLabel(i), float64(wg.QueueDepth))
	}
	obs.WriteHeader(w, "evprop_worker_queue_weight", "Weight counter of the worker's local ready list.", "gauge")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_queue_weight", workerLabel(i), float64(wg.QueueWeight))
	}
	obs.WriteHeader(w, "evprop_worker_busy_seconds_total", "Worker time inside node-level primitives.", "counter")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_busy_seconds_total", workerLabel(i), float64(wg.BusyNs)/1e9)
	}
	obs.WriteHeader(w, "evprop_worker_items_total", "Items executed by the worker (tasks, pieces, combiners).", "counter")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_items_total", workerLabel(i), float64(wg.Items))
	}
	obs.WriteHeader(w, "evprop_worker_completed_total", "Original graph tasks retired by the worker.", "counter")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_completed_total", workerLabel(i), float64(wg.Completed))
	}
	obs.WriteHeader(w, "evprop_worker_steal_attempts_total", "Steal scans by the worker (stealing scheduler).", "counter")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_steal_attempts_total", workerLabel(i), float64(wg.StealAttempts))
	}
	obs.WriteHeader(w, "evprop_worker_steals_total", "Items the worker stole from another list.", "counter")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_steals_total", workerLabel(i), float64(wg.Steals))
	}
	obs.WriteHeader(w, "evprop_worker_partitions_total", "Tasks the worker split into δ-pieces.", "counter")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_partitions_total", workerLabel(i), float64(wg.Partitions))
	}
	obs.WriteHeader(w, "evprop_worker_state", "Worker state (one series per worker, state as label, value 1).", "gauge")
	for i, wg := range gg.Workers {
		obs.WriteSample(w, "evprop_worker_state", map[string]string{
			"worker": fmt.Sprintf("%d", i), "state": wg.State,
		}, 1)
	}
}

func workerLabel(i int) map[string]string {
	return map[string]string{"worker": fmt.Sprintf("%d", i)}
}
