package main

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evprop"
	"evprop/internal/audit"
)

// auditTestServer boots a server with the durable audit pipeline attached,
// spilling into a per-test temp directory, mirroring the -audit-dir boot.
func auditTestServer(t *testing.T) (*httptest.Server, *server, string) {
	t.Helper()
	srv, err := newServer(evprop.Asia(), evprop.Options{Workers: 2, RecordEvidence: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	dir := t.TempDir()
	store, err := audit.OpenFileStore(dir, audit.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := audit.NewWriter(store, audit.Config{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.aud, srv.audStore, srv.auditDir = w, store, dir
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		w.Close()
	})
	return ts, srv, dir
}

// auditedRecords flushes the writer and reads everything spilled so far,
// verifying the chain along the way.
func auditedRecords(t *testing.T, srv *server, dir string) []*audit.Record {
	t.Helper()
	srv.aud.Flush()
	batches, err := audit.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.VerifyChain(batches); err != nil {
		t.Fatalf("chain verification: %v", err)
	}
	var recs []*audit.Record
	for _, b := range batches {
		for _, raw := range b.Records {
			r, err := audit.DecodeRecord(raw)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
	}
	return recs
}

func TestAuditSpillsQueries(t *testing.T) {
	ts, srv, dir := auditTestServer(t)

	// One successful query, one MPE, one failing query.
	r1 := post(t, ts.URL+"/v1/query", map[string]any{
		"evidence": map[string]int{"XRay": 1},
		"query":    []string{"Lung"},
	})
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", r1.StatusCode)
	}
	var qr queryResponse
	decode(t, r1, &qr)
	r2 := post(t, ts.URL+"/v1/mpe", map[string]any{
		"evidence": map[string]int{"XRay": 1},
	})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("mpe status %d", r2.StatusCode)
	}
	r3 := post(t, ts.URL+"/v1/query", map[string]any{
		"evidence": map[string]int{"NoSuchVar": 1},
	})
	if r3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad query status %d", r3.StatusCode)
	}

	recs := auditedRecords(t, srv, dir)
	if len(recs) != 3 {
		t.Fatalf("got %d audit records, want 3", len(recs))
	}
	q, m, bad := recs[0], recs[1], recs[2]
	if q.Kind != audit.KindQuery || q.Error != "" {
		t.Fatalf("first record: kind %d error %q", q.Kind, q.Error)
	}
	if q.Model != defaultModel || q.Version == 0 {
		t.Errorf("query record model %q version %d", q.Model, q.Version)
	}
	if q.Evidence["XRay"] != 1 || len(q.Query) != 1 || q.Query[0] != "Lung" {
		t.Errorf("query record inputs: evidence %v query %v", q.Evidence, q.Query)
	}
	if q.PEvidence != qr.PEvidence {
		t.Errorf("audited P(e) %v != served %v", q.PEvidence, qr.PEvidence)
	}
	if len(q.Posteriors["Lung"]) != 2 {
		t.Errorf("audited posteriors %v", q.Posteriors)
	}
	if q.ID == "" || q.TimeUnixNano == 0 || q.ElapsedUsec <= 0 {
		t.Errorf("query record metadata: id %q time %d elapsed %v", q.ID, q.TimeUnixNano, q.ElapsedUsec)
	}
	if m.Kind != audit.KindMPE || m.Error != "" {
		t.Fatalf("second record: kind %d error %q", m.Kind, m.Error)
	}
	if len(m.Assignment) == 0 || m.Probability <= 0 {
		t.Errorf("mpe record: assignment %v probability %v", m.Assignment, m.Probability)
	}
	if bad.Kind != audit.KindQuery || bad.Error == "" {
		t.Errorf("third record: kind %d error %q — want a failed query", bad.Kind, bad.Error)
	}
}

func TestAuditStatusEndpointAndStats(t *testing.T) {
	ts, srv, dir := auditTestServer(t)
	post(t, ts.URL+"/v1/query", map[string]any{"evidence": map[string]int{"XRay": 1}})
	srv.aud.Flush()

	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st auditStats
	decode(t, resp, &st)
	if !st.Enabled || st.Dir != dir {
		t.Fatalf("audit status: enabled %v dir %q", st.Enabled, st.Dir)
	}
	if st.Enqueued < 1 || st.Spilled < 1 || st.Batches < 1 {
		t.Errorf("audit counters: %+v", st.WriterStats)
	}
	if st.Segments < 1 || st.Bytes <= 0 {
		t.Errorf("audit store: segments %d bytes %d", st.Segments, st.Bytes)
	}
	if st.LastRoot == "" {
		t.Error("audit status missing chain head")
	}

	// The same block appears under /v1/stats.
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var sr statsResponse
	decode(t, r2, &sr)
	if !sr.Audit.Enabled || sr.Audit.Spilled < 1 {
		t.Errorf("stats audit section: %+v", sr.Audit)
	}
}

func TestAuditDisabledStatus(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st auditStats
	decode(t, resp, &st)
	if st.Enabled {
		t.Error("audit reported enabled without a writer")
	}
}

func TestAuditMetricsSeries(t *testing.T) {
	ts, srv, _ := auditTestServer(t)
	post(t, ts.URL+"/v1/query", map[string]any{"evidence": map[string]int{"XRay": 1}})
	srv.aud.Flush()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, name := range []string{
		"evprop_audit_enqueued_total",
		"evprop_audit_dropped_total",
		"evprop_audit_spilled_total",
		"evprop_audit_batches_total",
		"evprop_audit_store_errors_total",
		"evprop_audit_flush_seconds_total",
		"evprop_audit_flush_max_seconds",
		"evprop_audit_segments",
		"evprop_audit_segment_bytes",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("metrics missing %s", name)
		}
	}
	if !strings.Contains(text, "evprop_audit_spilled_total 1") {
		t.Error("spilled counter not reflected in metrics")
	}
}

func TestAuditCoalescedBatch(t *testing.T) {
	ts, srv, dir := auditTestServer(t)
	srv.co = newCoalescer(20 * time.Millisecond)

	queries := make([]map[string]any, 4)
	for i := range queries {
		queries[i] = map[string]any{"evidence": map[string]int{"XRay": 1}, "query": []string{"Lung"}}
	}
	resp := post(t, ts.URL+"/v1/batch", map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	recs := auditedRecords(t, srv, dir)
	if len(recs) != 4 {
		t.Fatalf("got %d audit records, want 4", len(recs))
	}
	riders := 0
	for _, r := range recs {
		if r.Error != "" {
			t.Errorf("coalesced record errored: %s", r.Error)
		}
		if r.Cached {
			riders++
		}
	}
	if riders != 3 {
		t.Errorf("got %d rider (Cached) records, want 3", riders)
	}
}

func TestFlightRecorderPagination(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 0})
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/v1/query", map[string]any{"evidence": map[string]int{"XRay": i % 2}})
	}

	page := func(query string) flightRecorderResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/debug/flightrecorder" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", query, resp.StatusCode)
		}
		var fr flightRecorderResponse
		decode(t, resp, &fr)
		return fr
	}

	full := page("")
	if len(full.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(full.Records))
	}
	// Record 0 must survive an absent ?since (since is exclusive only when
	// present).
	if full.Records[0].Seq != 0 {
		t.Fatalf("first record seq %d", full.Records[0].Seq)
	}
	if full.NextSince != full.Records[4].Seq {
		t.Errorf("next_since %d, want %d", full.NextSince, full.Records[4].Seq)
	}

	// Page through with limit 2: 2 + 2 + 1, then an empty page that echoes
	// the cursor back.
	var got []uint64
	cursor, pages := uint64(0), 0
	first := true
	for {
		q := fmt.Sprintf("?limit=2&since=%d", cursor)
		if first {
			q, first = "?limit=2", false
		}
		fr := page(q)
		if len(fr.Records) == 0 {
			if fr.NextSince != cursor {
				t.Errorf("empty page next_since %d, want echo %d", fr.NextSince, cursor)
			}
			break
		}
		for _, r := range fr.Records {
			got = append(got, r.Seq)
		}
		cursor = fr.NextSince
		if pages++; pages > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(got) != 5 {
		t.Fatalf("paged %d records, want 5 (%v)", len(got), got)
	}
	for i, seq := range got {
		if seq != full.Records[i].Seq {
			t.Fatalf("page order mismatch: %v vs %v", got, full.Records)
		}
	}

	// Evidence capture: engines without RecordEvidence still carry the sig.
	if full.Records[0].EvidenceSig == "" {
		t.Error("flight record missing evidence signature")
	}

	// Malformed cursors are 400s.
	for _, q := range []string{"?since=abc", "?since=-1", "?limit=x", "?limit=-2"} {
		resp, err := http.Get(ts.URL + "/v1/debug/flightrecorder" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
