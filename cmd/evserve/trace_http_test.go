package main

import (
	"net/http"
	"time"

	"bytes"
	"encoding/json"
	"testing"

	"evprop"
	"evprop/internal/obs/trace"
)

// HTTP-level tracing conformance: a caller-supplied W3C traceparent must
// survive evserve end to end (same trace ID in the X-Trace-ID header, the
// error envelope, and the kept trace, with the remote span as the root's
// parent), batch sub-queries must appear as child spans, and coalesced
// riders must link into their leader's span tree.

// postTraced posts body with a traceparent header and returns the response.
func postTraced(t *testing.T, url, traceparent string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// fetchTrace polls GET /v1/debug/trace?id= until the trace lands in the
// store (Finish runs after the response is written, so the store can trail
// the client by a beat).
func fetchTrace(t *testing.T, baseURL, id string) traceResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/v1/debug/trace?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var tr traceResponse
			decode(t, resp, &tr)
			resp.Body.Close()
			return tr
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("trace %s not retained", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (tr traceResponse) span(t *testing.T, name string) traceSpanJSON {
	t.Helper()
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("trace has no span %q (got %v)", name, spanNames(tr))
	return traceSpanJSON{}
}

func (tr traceResponse) has(name string) bool {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

func spanNames(tr traceResponse) []string {
	names := make([]string, len(tr.Spans))
	for i, sp := range tr.Spans {
		names[i] = sp.Name
	}
	return names
}

// TestTraceparentSurvivesEndToEnd: the caller's trace ID is adopted, echoed
// in X-Trace-ID, and the kept trace's root span links to the caller's span.
func TestTraceparentSurvivesEndToEnd(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	const (
		callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
		callerSpan  = "00f067aa0ba902b7"
	)
	parent := "00-" + callerTrace + "-" + callerSpan + "-01"
	resp := postTraced(t, ts.URL+"/v1/query", parent,
		queryRequest{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != callerTrace {
		t.Fatalf("X-Trace-ID %q, want the caller's trace ID %q", got, callerTrace)
	}
	tr := fetchTrace(t, ts.URL, callerTrace)
	if tr.TraceID != callerTrace {
		t.Errorf("stored trace ID %q", tr.TraceID)
	}
	if !tr.Sampled {
		t.Error("caller's sampled flag was dropped")
	}
	// Reason: the caller flagged the trace, which outranks the head coin.
	if tr.Reason != "flagged" {
		t.Errorf("keep reason %q, want flagged", tr.Reason)
	}
	root := tr.span(t, "/v1/query")
	if root.ParentSpanID != callerSpan {
		t.Errorf("root parent %q, want the caller's span %q", root.ParentSpanID, callerSpan)
	}
	if st, ok := root.Attrs["http.status"].(float64); !ok || int(st) != http.StatusOK {
		t.Errorf("root http.status attr %v", root.Attrs["http.status"])
	}
	// The engine's pipeline stages hang under the root.
	for _, stage := range []string{"absorb", "propagate"} {
		sp := tr.span(t, stage)
		if sp.ParentSpanID != root.SpanID {
			t.Errorf("%s parent %q, want root %q", stage, sp.ParentSpanID, root.SpanID)
		}
	}
}

// TestTraceErrorEnvelopeAndKeep: a failed request's envelope carries the
// trace ID, and tail sampling keeps the trace with reason "error"
// regardless of the head coin.
func TestTraceErrorEnvelopeAndKeep(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	srv.tracer.SampleRate = 0 // tail rules only
	resp := post(t, ts.URL+"/v1/query", queryRequest{Query: []string{"nope"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env errorEnvelope
	decode(t, resp, &env)
	id := resp.Header.Get("X-Trace-ID")
	if env.Error.TraceID != id || len(id) != 32 {
		t.Fatalf("envelope trace_id %q, header %q", env.Error.TraceID, id)
	}
	// 4xx is not a server error: the root span did not Fail, so the trace
	// is kept only if the handler marked it — it should NOT be in the store
	// (client errors at rate 0 are noise, not incidents).
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		r2, err := http.Get(ts.URL + "/v1/debug/trace?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode == http.StatusOK {
			t.Fatal("422 trace kept at sample rate 0; only 5xx should trip the error rule")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceBatchAndCoalescedRider: every batch sub-query gets a batch.item
// child span, and with the coalescer on, riders surface as coalesced.rider
// children in the leader's trace.
func TestTraceBatchAndCoalescedRider(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2, CacheSize: 16})
	srv.co = newCoalescer(20 * time.Millisecond)
	ev := evprop.Evidence{"XRay": 1, "Dysp": 0}
	resp := post(t, ts.URL+"/v1/batch", batchRequest{Queries: []queryRequest{
		{Evidence: ev, Query: []string{"Lung"}},
		{Evidence: ev, Query: []string{"Bronc"}},
		{Evidence: ev, Query: []string{"Smoke"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br batchResponse
	decode(t, resp, &br)
	for i, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
	}
	id := resp.Header.Get("X-Trace-ID")
	tr := fetchTrace(t, ts.URL, id)
	items := 0
	for _, sp := range tr.Spans {
		if sp.Name == "batch.item" {
			items++
		}
	}
	if items != 3 {
		t.Errorf("%d batch.item spans, want 3 (names %v)", items, spanNames(tr))
	}
	// Three identical sub-queries in one window: one leader, two riders.
	riders := 0
	for _, sp := range tr.Spans {
		if sp.Name == "coalesced.rider" {
			riders++
			if sp.Attrs["rider.trace_id"] != tr.TraceID {
				t.Errorf("rider.trace_id %v, want %s", sp.Attrs["rider.trace_id"], tr.TraceID)
			}
		}
	}
	if riders != 2 {
		t.Errorf("%d coalesced.rider spans, want 2 (names %v)", riders, spanNames(tr))
	}
	if got := srv.co.coalesced.Load(); got != 2 {
		t.Errorf("coalesced counter %d, want 2", got)
	}
}

// TestTraceDebugEndpoint: the list form, the 404 and the 400.
func TestTraceDebugEndpoint(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	resp := post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := resp.Header.Get("X-Trace-ID")
	fetchTrace(t, ts.URL, want) // wait for Finish to land it

	r, err := http.Get(ts.URL + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var list traceListResponse
	decode(t, r, &list)
	r.Body.Close()
	found := false
	for _, id := range list.Recent {
		if id == want {
			found = true
		}
	}
	if !found {
		t.Errorf("recent list %v missing %s", list.Recent, want)
	}
	if !list.Stats.Enabled || list.Stats.Started == 0 || list.Stats.Kept == 0 {
		t.Errorf("tracer stats %+v", list.Stats)
	}

	r, err = http.Get(ts.URL + "/v1/debug/trace?id=" + trace.NewTraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d, want 404", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/v1/debug/trace?id=xyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d, want 400", r.StatusCode)
	}
}
