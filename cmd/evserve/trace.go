package main

import (
	"encoding/hex"
	"net/http"
	"time"

	"evprop/internal/obs"
	otrace "evprop/internal/obs/trace"
)

// Distributed-tracing surface of the server: every instrumented request
// runs under a span arena (see middleware.go), tail sampling keeps the
// interesting traces in a bounded in-memory store, and this file serves
// them back — GET /v1/debug/trace?id=<32-hex trace id> returns one span
// tree, no id returns the recent keep list — plus the tracer's counters
// for /v1/stats and /v1/metrics.

// traceSpanJSON is one span in the /v1/debug/trace payload.
type traceSpanJSON struct {
	SpanID       string         `json:"span_id"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	Name         string         `json:"name"`
	Start        time.Time      `json:"start"`
	DurationUsec float64        `json:"duration_usec"`
	Status       string         `json:"status,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
}

// traceResponse is the GET /v1/debug/trace?id= payload: one kept trace.
type traceResponse struct {
	TraceID string `json:"trace_id"`
	Sampled bool   `json:"sampled"`
	State   string `json:"tracestate,omitempty"`
	// Reason is the tail-sampling verdict that kept this trace: "error",
	// "slow", "flagged" or "head".
	Reason       string          `json:"reason"`
	DroppedSpans int64           `json:"dropped_spans,omitempty"`
	Spans        []traceSpanJSON `json:"spans"`
}

// traceListResponse answers GET /v1/debug/trace without an id: the most
// recently kept trace IDs (newest first) and the tracer's counters.
type traceListResponse struct {
	Recent []string          `json:"recent"`
	Stats  traceStatsSummary `json:"stats"`
}

// traceStatsSummary is the tracer block in /v1/stats.
type traceStatsSummary struct {
	Enabled    bool    `json:"enabled"`
	SampleRate float64 `json:"sample_rate,omitempty"`
	// Started counts traced requests, Kept the traces tail sampling
	// retained, SpansDropped spans lost to arena overflow.
	Started      int64 `json:"started"`
	Kept         int64 `json:"kept"`
	SpansDropped int64 `json:"spans_dropped"`
	StoreLen     int   `json:"store_len"`
	// Exporter reports the OTLP push pipeline; nil without -otlp-endpoint.
	Exporter *otrace.ExporterStats `json:"exporter,omitempty"`
}

func (s *server) traceStats() traceStatsSummary {
	if s.tracer == nil {
		return traceStatsSummary{}
	}
	ts := s.tracer.Stats()
	out := traceStatsSummary{
		Enabled:      true,
		SampleRate:   s.tracer.SampleRate,
		Started:      ts.Started,
		Kept:         ts.Kept,
		SpansDropped: ts.SpansDropped,
		StoreLen:     ts.StoreLen,
	}
	if s.tracer.Exporter != nil {
		es := s.tracer.Exporter.Stats()
		out.Exporter = &es
	}
	return out
}

func attrsMap(attrs []otrace.Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		switch a.Kind {
		case otrace.AttrString:
			m[a.Key] = a.Str
		case otrace.AttrInt:
			m[a.Key] = a.Int
		case otrace.AttrFloat:
			m[a.Key] = a.F64
		case otrace.AttrBool:
			m[a.Key] = a.Bool
		}
	}
	return m
}

func toTraceResponse(td *otrace.TraceData) traceResponse {
	resp := traceResponse{
		TraceID:      td.TraceID.String(),
		Sampled:      td.Flags&otrace.FlagSampled != 0,
		State:        td.State,
		Reason:       td.Reason,
		DroppedSpans: td.Dropped,
		Spans:        make([]traceSpanJSON, 0, len(td.Spans)),
	}
	for _, sd := range td.Spans {
		sp := traceSpanJSON{
			SpanID:       sd.SpanID.String(),
			Name:         sd.Name,
			Start:        sd.Start,
			DurationUsec: float64(sd.Duration.Nanoseconds()) / 1e3,
			Status:       sd.Status,
			Attrs:        attrsMap(sd.Attrs),
		}
		if sd.Parent.IsValid() {
			sp.ParentSpanID = sd.Parent.String()
		}
		resp.Spans = append(resp.Spans, sp)
	}
	return resp
}

// handleTrace serves GET /v1/debug/trace. With ?id=<32-hex trace id> it
// returns the kept trace's span tree (404 trace_not_found when tail
// sampling dropped it or it was evicted); without an id it lists the most
// recently kept trace IDs.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	if s.tracer == nil || s.tracer.Store == nil {
		s.writeErrorCode(w, r, http.StatusNotFound, "tracing_disabled", "tracing is disabled (-trace=false)")
		return
	}
	raw := r.URL.Query().Get("id")
	if raw == "" {
		ids := s.tracer.Store.Recent(32)
		resp := traceListResponse{Recent: make([]string, 0, len(ids)), Stats: s.traceStats()}
		for _, id := range ids {
			resp.Recent = append(resp.Recent, id.String())
		}
		s.writeJSON(w, resp)
		return
	}
	var id otrace.TraceID
	if n, err := hex.Decode(id[:], []byte(raw)); err != nil || n != len(id) || len(raw) != 2*len(id) {
		s.writeErrorCode(w, r, http.StatusBadRequest, "bad_request", "id must be a 32-char hex trace ID")
		return
	}
	td := s.tracer.Store.Get(id)
	if td == nil {
		s.writeErrorCode(w, r, http.StatusNotFound, "trace_not_found", "trace not retained (tail sampling drops fast, error-free traces)")
		return
	}
	s.writeJSON(w, toTraceResponse(td))
}

// writeTraceMetrics renders the tracer's Prometheus series.
func (s *server) writeTraceMetrics(w http.ResponseWriter) {
	if s.tracer == nil {
		return
	}
	ts := s.tracer.Stats()
	obs.WriteHeader(w, "evprop_trace_started_total", "Requests traced.", "counter")
	obs.WriteSample(w, "evprop_trace_started_total", nil, float64(ts.Started))
	obs.WriteHeader(w, "evprop_trace_kept_total", "Traces kept by tail sampling.", "counter")
	obs.WriteSample(w, "evprop_trace_kept_total", nil, float64(ts.Kept))
	obs.WriteHeader(w, "evprop_trace_spans_dropped_total", "Spans dropped to arena overflow.", "counter")
	obs.WriteSample(w, "evprop_trace_spans_dropped_total", nil, float64(ts.SpansDropped))
	obs.WriteHeader(w, "evprop_trace_store_traces", "Traces currently retained by the debug store.", "gauge")
	obs.WriteSample(w, "evprop_trace_store_traces", nil, float64(ts.StoreLen))
	if s.tracer.Exporter != nil {
		es := s.tracer.Exporter.Stats()
		obs.WriteHeader(w, "evprop_trace_export_spans_total", "OTLP spans by export outcome.", "counter")
		obs.WriteSample(w, "evprop_trace_export_spans_total", map[string]string{"result": "exported"}, float64(es.Exported))
		obs.WriteSample(w, "evprop_trace_export_spans_total", map[string]string{"result": "dropped"}, float64(es.Dropped))
		obs.WriteHeader(w, "evprop_trace_export_retries_total", "OTLP POSTs retried.", "counter")
		obs.WriteSample(w, "evprop_trace_export_retries_total", nil, float64(es.Retries))
	}
}
