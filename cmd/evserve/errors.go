package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"evprop"
	"evprop/internal/registry"
)

// Uniform error surface: every /v1 handler answers failures with the same
// JSON envelope,
//
//	{"error": {"code": "unknown_variable", "message": "…", "query_id": "q-…"}}
//
// and the typed-error → (HTTP status, code) mapping lives in exactly one
// table below. Handlers never call http.Error and never invent status
// codes; they pass the typed error to writeError (or, for protocol-level
// rejections with no underlying error, writeErrorCode).

// errOverloaded is returned when -max-inflight admission control rejects
// a request; mapped to 429.
var errOverloaded = errors.New("evserve: too many in-flight requests")

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the answer was ready.
const statusClientClosedRequest = 499

// errorMapping is one row of the typed-error → HTTP mapping table.
type errorMapping struct {
	is     error
	status int
	code   string
}

// errorTable is THE mapping. Order matters only where errors could wrap
// each other (they do not today); the first errors.Is match wins.
var errorTable = []errorMapping{
	{context.Canceled, statusClientClosedRequest, "canceled"},
	{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
	{errOverloaded, http.StatusTooManyRequests, "overloaded"},
	{registry.ErrNotFound, http.StatusNotFound, "model_not_found"},
	{registry.ErrNotReady, http.StatusServiceUnavailable, "model_not_ready"},
	{registry.ErrBadName, http.StatusUnprocessableEntity, "bad_model_name"},
	{evprop.ErrUncompiled, http.StatusNotFound, "model_not_found"},
	{evprop.ErrUnknownVariable, http.StatusUnprocessableEntity, "unknown_variable"},
	{evprop.ErrZeroProbabilityEvidence, http.StatusUnprocessableEntity, "zero_probability_evidence"},
	{evprop.ErrBadState, http.StatusBadRequest, "bad_state"},
	{evprop.ErrResultClosed, http.StatusInternalServerError, "internal"},
}

// classify maps a typed error onto its HTTP status and machine-readable
// code. Unmatched errors are client-input problems (JSON decoding, BIF
// parse failures) and map to 400 bad_request.
func classify(err error) (int, string) {
	for _, m := range errorTable {
		if errors.Is(err, m.is) {
			return m.status, m.code
		}
	}
	return http.StatusBadRequest, "bad_request"
}

// errorEnvelope is the uniform error body.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	// Code is a stable machine-readable identifier from the mapping table.
	Code string `json:"code"`
	// Message is the human-readable error text.
	Message string `json:"message"`
	// QueryID correlates the failure with the access log and the flight
	// recorder; empty on routes outside the instrumented set.
	QueryID string `json:"query_id,omitempty"`
	// TraceID correlates the failure with its distributed trace
	// (GET /v1/debug/trace?id=); empty when tracing is off.
	TraceID string `json:"trace_id,omitempty"`
}

// writeError answers a failed request from the typed error via the
// mapping table. It is the single choke point that counts HTTP errors, so
// each failed request counts exactly once globally and once against its
// model (when one was resolved).
func (s *server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := classify(err)
	s.writeErrorCode(w, r, status, code, err.Error())
}

// writeErrorCode is writeError for protocol-level rejections that carry
// no typed error (wrong method, missing route).
func (s *server) writeErrorCode(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	s.stats.errors.Add(1)
	ri := reqInfoFrom(r.Context())
	var id, traceID string
	if ri != nil {
		id = ri.queryID
		traceID = ri.traceID
		if ms := ri.stats(); ms != nil {
			ms.errors.Add(1)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: code, Message: msg, QueryID: id, TraceID: traceID}})
}
