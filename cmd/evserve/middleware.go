package main

import (
	"context"
	"log/slog"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"evprop"
	"evprop/internal/obs/trace"
)

// Per-request observability: instrument wraps every handler so each request
// gets a query ID (minted here, or honored from the client's X-Query-ID
// header when it passes validQueryID), an optional deadline, and one
// structured access-log record on
// completion. The ID rides the request context into Engine.Propagate and the
// scheduler, so the access-log line, the HTTP response header and the
// flight-recorder entry all carry the same ID.

// reqInfo is the annotation channel between the middleware and the handlers:
// handlers note what they learned (evidence size, the propagation's Fig. 8
// gauges) and the middleware folds it into the access log and the stats
// window. Fields are atomics because /v1/batch runs its sub-queries on
// concurrent goroutines.
type reqInfo struct {
	queryID string
	// traceID is the request's 32-hex distributed-trace ID, "" when tracing
	// is off. Written once by instrument before the handler runs, so plain
	// reads from handler goroutines are ordered.
	traceID      string
	evidenceVars atomic.Int64
	propagations atomic.Int64
	// overheadFrac and loadBalance hold the most recent propagation's
	// gauges as float bits.
	overheadFrac atomic.Uint64
	loadBalance  atomic.Uint64
	// cacheLookups counts the request's result-cache consultations and
	// cacheHits the ones served without a propagation; both stay zero on
	// engines compiled without a cache.
	cacheHits    atomic.Int64
	cacheLookups atomic.Int64
	// model names the model the request resolved to and modelStats points
	// at its counters; set by server.acquire once routing picked a model,
	// so errors and window traffic attribute to the right tenant.
	model      atomic.Pointer[string]
	modelStats atomic.Pointer[modelStats]
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's annotation record, nil for contexts that
// did not pass through instrument (direct engine use, tests).
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// noteQuery records one query's evidence size.
func (ri *reqInfo) noteQuery(evidenceVars int) {
	if ri == nil {
		return
	}
	ri.evidenceVars.Add(int64(evidenceVars))
}

// noteRun records one propagation's scheduler gauges.
func (ri *reqInfo) noteRun(m *evprop.RunMetrics) {
	if ri == nil || m == nil {
		return
	}
	ri.propagations.Add(1)
	ri.overheadFrac.Store(math.Float64bits(m.OverheadFraction))
	ri.loadBalance.Store(math.Float64bits(m.LoadBalance))
}

// noteCache records one result-cache consultation and its outcome.
func (ri *reqInfo) noteCache(hit bool) {
	if ri == nil {
		return
	}
	ri.cacheLookups.Add(1)
	if hit {
		ri.cacheHits.Add(1)
	}
}

// noteModel records which model the request resolved to.
func (ri *reqInfo) noteModel(name string, ms *modelStats) {
	if ri == nil {
		return
	}
	ri.model.Store(&name)
	ri.modelStats.Store(ms)
}

// stats returns the resolved model's counters, nil before routing resolved
// a model (bad name, unknown model).
func (ri *reqInfo) stats() *modelStats {
	if ri == nil {
		return nil
	}
	return ri.modelStats.Load()
}

// modelName returns the resolved model's name, "" when none resolved.
func (ri *reqInfo) modelName() string {
	if ri == nil {
		return ""
	}
	if p := ri.model.Load(); p != nil {
		return *p
	}
	return ""
}

func (ri *reqInfo) lastLoadBalance() float64 {
	return math.Float64frombits(ri.loadBalance.Load())
}

func (ri *reqInfo) lastOverheadFrac() float64 {
	return math.Float64frombits(ri.overheadFrac.Load())
}

// queryIDMaxLen bounds client-supplied query IDs: anything longer is
// replaced with a generated ID rather than retained in the access log and
// the flight-recorder ring.
const queryIDMaxLen = 64

// validQueryID reports whether a client-supplied X-Query-ID may be adopted
// as the request's query ID: non-empty, at most queryIDMaxLen bytes, and
// limited to [A-Za-z0-9._:-] so an arbitrary header cannot pollute the
// structured logs or the recorder with control characters, separators or
// oversized values. Generated IDs ("q-9f2c41d3-17") satisfy this too.
func validQueryID(id string) bool {
	if id == "" || len(id) > queryIDMaxLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return false
		}
	}
	return true
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// legacySunset is when the unversioned aliases (/query, /model, /mpe,
// /dsep) stop being served; announced on every legacy response via the
// Sunset header (RFC 8594) so clients can migrate on their own schedule.
const legacySunset = "Sat, 01 May 2027 00:00:00 GMT"

// deprecated marks a legacy unversioned alias: responses carry
// Deprecation (RFC 9745) and Sunset headers plus a Link to the successor
// route, and the request counts into the legacy-traffic counter surfaced
// by /v1/stats and /v1/metrics.
func (s *server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.legacy.Add(1)
		successor := "/v1/models/default" + r.URL.Path
		if r.URL.Path == "/model" {
			successor = "/v1/models/default" // schema lives on the model resource
		}
		hdr := w.Header()
		hdr.Set("Deprecation", "@1767225600") // 2026-01-01, when /v1 became canonical
		hdr.Set("Sunset", legacySunset)
		hdr.Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// instrument wraps a handler with the per-request observability layer.
func (s *server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Query-ID")
		if !validQueryID(id) {
			id = evprop.NewQueryID()
		}
		ri := &reqInfo{queryID: id}
		ctx := evprop.WithQueryID(r.Context(), id)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		// Open the request's trace: honor a caller-supplied W3C traceparent
		// (same trace ID end to end, remote span as the root's parent), mint
		// a fresh ID otherwise. The span rides the context into the engine;
		// the keep decision is deferred to Finish (tail sampling).
		var (
			arena *trace.Trace
			root  *trace.Span
		)
		if s.tracer != nil {
			parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
			if parent.IsValid() {
				parent.State = r.Header.Get("tracestate")
			}
			arena, root = s.tracer.StartRequest(endpoint, parent)
			root.SetAttr(trace.String("http.method", r.Method), trace.String("query.id", id))
			ctx = trace.ContextWith(ctx, root)
			ri.traceID = root.TraceID().String()
			w.Header().Set("X-Trace-ID", ri.traceID)
		}
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		w.Header().Set("X-Query-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		latency := time.Since(start)
		status := sw.code
		if status == 0 {
			status = http.StatusOK
		}
		if root != nil {
			root.SetAttr(trace.Int("http.status", int64(status)))
			if status >= 500 {
				root.Fail(http.StatusText(status))
			}
			root.End()
			s.tracer.Finish(arena, root)
		}
		s.window.Observe(latency, status >= 400, ri.lastLoadBalance())
		s.window.ObserveCache(ri.cacheHits.Load(), ri.cacheLookups.Load())
		if ms := ri.stats(); ms != nil {
			ms.window.Observe(latency, status >= 400, ri.lastLoadBalance())
			ms.window.ObserveCache(ri.cacheHits.Load(), ri.cacheLookups.Load())
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("trace_id", ri.traceID),
			slog.String("method", r.Method),
			slog.String("endpoint", endpoint),
			slog.String("model", ri.modelName()),
			slog.Int("status", status),
			slog.Int("bytes", sw.bytes),
			slog.Int64("evidence_vars", ri.evidenceVars.Load()),
			slog.Int64("propagations", ri.propagations.Load()),
			slog.Int64("cache_hits", ri.cacheHits.Load()),
			slog.Float64("sched_overhead_fraction", ri.lastOverheadFrac()),
			slog.Float64("load_balance", ri.lastLoadBalance()),
			slog.Duration("latency", latency),
		)
	}
}
