package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"evprop"
	"evprop/internal/obs/trace"
)

func testServer(t *testing.T) *httptest.Server {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	return ts
}

// testServerFull also hands back the server so tests can reach its engine,
// window and logger. Access logs are discarded unless a test swaps srv.log.
// Tracing runs keep-everything (production defaults to -trace on; the
// sample rate only affects which traces tail sampling retains).
func testServerFull(t *testing.T, opts evprop.Options) (*httptest.Server, *server) {
	t.Helper()
	srv, err := newServer(evprop.Asia(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.tracer = &trace.Tracer{SampleRate: 1, Store: trace.NewStore(64)}
	srv.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, srv
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func TestModelEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m modelResponse
	decode(t, resp, &m)
	if len(m.Variables) != 8 {
		t.Errorf("%d variables", len(m.Variables))
	}
	for _, v := range m.Variables {
		if v.States != 2 {
			t.Errorf("variable %s has %d states", v.Name, v.States)
		}
	}
	// POST to /model is rejected.
	r2 := post(t, ts.URL+"/model", map[string]any{})
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /model status %d", r2.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/query", queryRequest{
		Evidence: evprop.Evidence{"XRay": 1},
		Query:    []string{"Lung"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var q queryResponse
	decode(t, resp, &q)
	if math.Abs(q.PEvidence-0.11029) > 1e-4 {
		t.Errorf("p_evidence = %v", q.PEvidence)
	}
	want, err := evprop.Asia().ExactMarginal("Lung", evprop.Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Posteriors["Lung"][1]-want[1]) > 1e-9 {
		t.Errorf("posterior = %v, oracle %v", q.Posteriors["Lung"], want)
	}
}

func TestQueryAllEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/query", queryRequest{Evidence: evprop.Evidence{"Dysp": 1}})
	var q queryResponse
	decode(t, resp, &q)
	if len(q.Posteriors) != 7 {
		t.Errorf("%d posteriors, want 7", len(q.Posteriors))
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	// Unknown variable: semantically invalid input → 422 per the error table.
	resp := post(t, ts.URL+"/query", queryRequest{Query: []string{"nope"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown variable status %d", resp.StatusCode)
	}
	// Malformed JSON.
	r, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{oops")))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", r.StatusCode)
	}
	// Wrong method.
	g, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d", g.StatusCode)
	}
}

func TestMPEEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/mpe", mpeRequest{Evidence: evprop.Evidence{"XRay": 1, "Dysp": 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m mpeResponse
	decode(t, resp, &m)
	if len(m.Assignment) != 8 {
		t.Errorf("assignment covers %d variables", len(m.Assignment))
	}
	if m.Assignment["XRay"] != 1 || m.Assignment["Dysp"] != 1 {
		t.Error("MPE contradicts evidence")
	}
	if m.Probability <= 0 || m.Probability > 1 {
		t.Errorf("probability %v", m.Probability)
	}
}

func TestBootSource(t *testing.T) {
	for _, kind := range []string{"asia", "sprinkler", "student", "random"} {
		n, err := bootSource(kind, "", 10, 1).Instantiate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := bootSource("bogus", "", 0, 0).Instantiate(); err == nil {
		t.Error("accepted bogus kind")
	}
	if _, err := bootSource("", "/does/not/exist.bif", 0, 0).Instantiate(); err == nil {
		t.Error("accepted missing BIF file")
	}
}

func TestDSepEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/dsep", dsepRequest{X: []string{"Asia"}, Y: []string{"Smoke"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var d dsepResponse
	decode(t, resp, &d)
	if !d.Separated {
		t.Error("Asia and Smoke should be marginally d-separated")
	}
	resp = post(t, ts.URL+"/dsep", dsepRequest{X: []string{"Asia"}, Y: []string{"Smoke"}, Z: []string{"Dysp"}})
	decode(t, resp, &d)
	if d.Separated {
		t.Error("Asia and Smoke should be d-connected given Dysp")
	}
	resp = post(t, ts.URL+"/dsep", dsepRequest{X: []string{"missing"}, Y: []string{"Smoke"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown variable status %d", resp.StatusCode)
	}
}

func TestV1Aliases(t *testing.T) {
	ts := testServer(t)
	// The same query through the legacy and versioned paths must agree.
	var legacy, v1 queryResponse
	decode(t, post(t, ts.URL+"/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}}), &legacy)
	decode(t, post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}}), &v1)
	if legacy.PEvidence != v1.PEvidence {
		t.Errorf("p_evidence: legacy %v vs v1 %v", legacy.PEvidence, v1.PEvidence)
	}
	if len(legacy.Posteriors["Lung"]) != len(v1.Posteriors["Lung"]) {
		t.Error("posterior shape differs between legacy and v1 paths")
	}
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/model status %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := testServer(t)
	req := batchRequest{Queries: []queryRequest{
		{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}},
		{Evidence: evprop.Evidence{"Dysp": 1}},
		{Query: []string{"nope"}}, // fails in place
	}}
	resp := post(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var b batchResponse
	decode(t, resp, &b)
	if len(b.Results) != 3 {
		t.Fatalf("%d results, want 3", len(b.Results))
	}
	if math.Abs(b.Results[0].PEvidence-0.11029) > 1e-4 {
		t.Errorf("result 0 p_evidence = %v", b.Results[0].PEvidence)
	}
	if len(b.Results[1].Posteriors) != 7 {
		t.Errorf("result 1 has %d posteriors, want 7", len(b.Results[1].Posteriors))
	}
	if b.Results[2].Error == "" {
		t.Error("result 2 should carry an error")
	}
	if b.Results[0].Error != "" || b.Results[1].Error != "" {
		t.Error("healthy results carry errors")
	}
}

func statsSnapshot(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats status %d", resp.StatusCode)
	}
	var s statsResponse
	decode(t, resp, &s)
	return s
}

// TestQuerySinglePropagation verifies the serving contract: one HTTP query
// costs exactly one scheduler invocation, with P(e) and the posteriors
// derived from the same propagation.
func TestQuerySinglePropagation(t *testing.T) {
	ts := testServer(t)
	before := statsSnapshot(t, ts)
	resp := post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var q queryResponse
	decode(t, resp, &q)
	if q.PEvidence <= 0 || len(q.Posteriors) != 7 {
		t.Fatalf("p_evidence %v, %d posteriors", q.PEvidence, len(q.Posteriors))
	}
	after := statsSnapshot(t, ts)
	if delta := after.Propagations - before.Propagations; delta != 1 {
		t.Errorf("one query cost %d propagations, want 1", delta)
	}
	if after.Queries != before.Queries+1 {
		t.Errorf("query counter %d → %d", before.Queries, after.Queries)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})
	post(t, ts.URL+"/v1/mpe", mpeRequest{Evidence: evprop.Evidence{"XRay": 1}})
	post(t, ts.URL+"/v1/batch", batchRequest{Queries: []queryRequest{{}, {}}})
	s := statsSnapshot(t, ts)
	if s.Queries != 1 || s.MPEs != 1 || s.Batches != 1 {
		t.Errorf("counters: queries %d mpes %d batches %d", s.Queries, s.MPEs, s.Batches)
	}
	if s.Scheduler == "" || s.Workers <= 0 {
		t.Errorf("scheduler %q workers %d", s.Scheduler, s.Workers)
	}
	// 1 query + 2 MPE (sum + max) + 2 batch queries = 5 propagations.
	if s.Propagations != 5 {
		t.Errorf("propagations %d, want 5", s.Propagations)
	}
	if s.AvgLatencyUsec <= 0 || s.MaxLatencyUsec < s.AvgLatencyUsec {
		t.Errorf("latency avg %v max %v", s.AvgLatencyUsec, s.MaxLatencyUsec)
	}
	if s.Errors != 0 {
		t.Errorf("errors %d", s.Errors)
	}
}

// TestConcurrentHTTPQueries drives the lock-free handlers from many client
// goroutines; under -race this verifies the server needs no engine mutex.
func TestConcurrentHTTPQueries(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				buf, _ := json.Marshal(queryRequest{Evidence: evprop.Evidence{"XRay": 1}, Query: []string{"Lung"}})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
				if err != nil {
					errc <- err
					return
				}
				var q queryResponse
				err = json.NewDecoder(resp.Body).Decode(&q)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if math.Abs(q.PEvidence-0.11029) > 1e-4 {
					errc <- fmt.Errorf("p_evidence = %v", q.PEvidence)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestZeroProbabilityEvidenceStatus(t *testing.T) {
	ts := testServer(t)
	// Asia's CPTs are strictly positive, so force an impossible observation
	// through a deterministic two-node network instead.
	net := evprop.NewNetwork()
	net.MustAddVariable("Cause", 2, nil, []float64{1, 0})
	net.MustAddVariable("Effect", 2, []string{"Cause"}, []float64{1, 0, 0, 1})
	srv, err := newServer(net, evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv.mux())
	t.Cleanup(ts2.Close)
	resp := post(t, ts2.URL+"/v1/mpe", mpeRequest{Evidence: evprop.Evidence{"Effect": 1}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("impossible-evidence MPE status %d, want 422", resp.StatusCode)
	}
	// A zero-probability plain query still succeeds with empty posteriors.
	q := post(t, ts2.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"Effect": 1}})
	if q.StatusCode != http.StatusOK {
		t.Errorf("impossible-evidence query status %d", q.StatusCode)
	}
	var qr queryResponse
	decode(t, q, &qr)
	if qr.PEvidence != 0 || len(qr.Posteriors) != 0 {
		t.Errorf("p_evidence %v, %d posteriors", qr.PEvidence, len(qr.Posteriors))
	}
	// Bad state index maps to 400 via ErrBadState.
	r := post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 5}})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad state status %d", r.StatusCode)
	}
}
