package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"evprop"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(evprop.Asia(), evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func TestModelEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m modelResponse
	decode(t, resp, &m)
	if len(m.Variables) != 8 {
		t.Errorf("%d variables", len(m.Variables))
	}
	for _, v := range m.Variables {
		if v.States != 2 {
			t.Errorf("variable %s has %d states", v.Name, v.States)
		}
	}
	// POST to /model is rejected.
	r2 := post(t, ts.URL+"/model", map[string]any{})
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /model status %d", r2.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/query", queryRequest{
		Evidence: evprop.Evidence{"XRay": 1},
		Query:    []string{"Lung"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var q queryResponse
	decode(t, resp, &q)
	if math.Abs(q.PEvidence-0.11029) > 1e-4 {
		t.Errorf("p_evidence = %v", q.PEvidence)
	}
	want, err := evprop.Asia().ExactMarginal("Lung", evprop.Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Posteriors["Lung"][1]-want[1]) > 1e-9 {
		t.Errorf("posterior = %v, oracle %v", q.Posteriors["Lung"], want)
	}
}

func TestQueryAllEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/query", queryRequest{Evidence: evprop.Evidence{"Dysp": 1}})
	var q queryResponse
	decode(t, resp, &q)
	if len(q.Posteriors) != 7 {
		t.Errorf("%d posteriors, want 7", len(q.Posteriors))
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	// Unknown variable.
	resp := post(t, ts.URL+"/query", queryRequest{Query: []string{"nope"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown variable status %d", resp.StatusCode)
	}
	// Malformed JSON.
	r, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{oops")))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", r.StatusCode)
	}
	// Wrong method.
	g, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d", g.StatusCode)
	}
}

func TestMPEEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/mpe", mpeRequest{Evidence: evprop.Evidence{"XRay": 1, "Dysp": 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m mpeResponse
	decode(t, resp, &m)
	if len(m.Assignment) != 8 {
		t.Errorf("assignment covers %d variables", len(m.Assignment))
	}
	if m.Assignment["XRay"] != 1 || m.Assignment["Dysp"] != 1 {
		t.Error("MPE contradicts evidence")
	}
	if m.Probability <= 0 || m.Probability > 1 {
		t.Errorf("probability %v", m.Probability)
	}
}

func TestLoadNetwork(t *testing.T) {
	for _, kind := range []string{"asia", "sprinkler", "student", "random"} {
		n, err := loadNetwork(kind, "", 10, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := loadNetwork("bogus", "", 0, 0); err == nil {
		t.Error("accepted bogus kind")
	}
	if _, err := loadNetwork("", "/does/not/exist.bif", 0, 0); err == nil {
		t.Error("accepted missing BIF file")
	}
}

func TestDSepEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/dsep", dsepRequest{X: []string{"Asia"}, Y: []string{"Smoke"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var d dsepResponse
	decode(t, resp, &d)
	if !d.Separated {
		t.Error("Asia and Smoke should be marginally d-separated")
	}
	resp = post(t, ts.URL+"/dsep", dsepRequest{X: []string{"Asia"}, Y: []string{"Smoke"}, Z: []string{"Dysp"}})
	decode(t, resp, &d)
	if d.Separated {
		t.Error("Asia and Smoke should be d-connected given Dysp")
	}
	resp = post(t, ts.URL+"/dsep", dsepRequest{X: []string{"missing"}, Y: []string{"Smoke"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown variable status %d", resp.StatusCode)
	}
}
