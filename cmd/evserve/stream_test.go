package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"evprop"
	"evprop/internal/obs"
)

// streamClient opens GET /v1/stream and hands back a scanner positioned on
// the event stream plus the response for cleanup.
func streamClient(t *testing.T, url string) (*bufio.Scanner, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	return bufio.NewScanner(resp.Body), resp
}

// nextEvent reads SSE lines until one complete event (id + data + blank) has
// been consumed, returning the decoded data payload.
func nextEvent(t *testing.T, sc *bufio.Scanner) (streamSnapshot, bool) {
	t.Helper()
	var snap streamSnapshot
	sawData := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &snap); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			sawData = true
		case line == "" && sawData:
			return snap, true
		}
	}
	return snap, false
}

// TestStreamDeliversSnapshots subscribes to /v1/stream on a fast sampler and
// checks that consecutive events carry coherent, advancing snapshots.
func TestStreamDeliversSnapshots(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	srv.sampler = obs.NewSampler(5*time.Millisecond, 60, srv.snapshotNow)
	srv.startSampler()
	t.Cleanup(srv.beginDrain)

	// Traffic before subscribing so counters are non-trivial.
	post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})

	sc, _ := streamClient(t, ts.URL)
	first, ok := nextEvent(t, sc)
	if !ok {
		t.Fatal("no initial event")
	}
	if first.Scheduler == "" || first.Workers != 2 {
		t.Errorf("initial snapshot scheduler %q workers %d", first.Scheduler, first.Workers)
	}
	if len(first.Gauges.Workers) != 2 {
		t.Errorf("gauge surface has %d workers, want 2", len(first.Gauges.Workers))
	}
	// The initial event may predate the query by one sampling interval, so
	// follow the stream until the propagation shows up.
	snap, prev := first, first
	for i := 0; snap.Propagations < 1; i++ {
		if i == 20 {
			t.Fatalf("propagations still %d after %d events", snap.Propagations, i)
		}
		next, ok := nextEvent(t, sc)
		if !ok {
			t.Fatal("stream ended early")
		}
		if next.Time.Before(prev.Time) {
			t.Errorf("snapshots went back in time: %v then %v", prev.Time, next.Time)
		}
		prev, snap = next, next
	}
}

// TestStreamClosesOnDrain is the satellite drain assertion: an open stream
// subscription must end cleanly (EOF, not a hang) as soon as drain begins.
func TestStreamClosesOnDrain(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})
	srv.startSampler()

	sc, resp := streamClient(t, ts.URL)
	if _, ok := nextEvent(t, sc); !ok {
		t.Fatal("no initial event")
	}

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		// Drain the remaining body; a clean server-side close ends Scan.
		for sc.Scan() {
		}
	}()
	srv.beginDrain()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("stream still open 3s after drain began")
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Errorf("stream did not close cleanly: %v", err)
	}
}

// TestServeShutdownClosesStream exercises the real wiring: http.Server
// Shutdown (as SIGINT triggers it) must run beginDrain via the registered
// hook, unblock the live stream handler, and let serve return promptly.
func TestServeShutdownClosesStream(t *testing.T) {
	srv, err := newServer(evprop.Asia(), evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv.startSampler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, srv.log) }()
	url := "http://" + ln.Addr().String()

	sc, _ := streamClient(t, url)
	if _, ok := nextEvent(t, sc); !ok {
		t.Fatal("no initial event")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return: open stream pinned the drain")
	}
	select {
	case <-srv.drain:
	default:
		t.Error("drain channel not closed by Shutdown hook")
	}
	srv.close()
}

// TestHealthzReadyz covers the probe pair across the server lifecycle:
// healthz always 200 with build info, readyz 503 → 200 → 503 around drain.
func TestHealthzReadyz(t *testing.T) {
	ts, srv := testServerFull(t, evprop.Options{Workers: 2})

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	hz := get("/v1/healthz")
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}
	var health healthzResponse
	decode(t, hz, &health)
	if health.Status != "ok" || health.Version == "" || !strings.HasPrefix(health.GoVersion, "go") {
		t.Errorf("healthz body %+v", health)
	}
	if health.GOMAXPROCS < 1 || health.UptimeSec < 0 {
		t.Errorf("healthz body %+v", health)
	}

	// Not ready until main marks the listener up.
	if rz := get("/v1/readyz"); rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before ready: status %d, want 503", rz.StatusCode)
	}
	srv.ready.Store(true)
	if rz := get("/v1/readyz"); rz.StatusCode != http.StatusOK {
		t.Errorf("readyz while serving: status %d, want 200", rz.StatusCode)
	}
	srv.beginDrain()
	if rz := get("/v1/readyz"); rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: status %d, want 503", rz.StatusCode)
	}
	// Liveness is unaffected by drain.
	if hz := get("/v1/healthz"); hz.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: status %d", hz.StatusCode)
	}
}

// TestMetricsConformance lints the server's full Prometheus exposition —
// including the new gauge families — against the format checker.
func TestMetricsConformance(t *testing.T) {
	ts, _ := testServerFull(t, evprop.Options{Workers: 2})
	post(t, ts.URL+"/v1/query", queryRequest{Evidence: evprop.Evidence{"XRay": 1}})

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if problems := obs.LintExposition(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("exposition problems:\n%s", strings.Join(problems, "\n"))
	}
	for _, metric := range []string{
		"evprop_sched_global_depth", "evprop_sched_active_runs",
		`evprop_worker_queue_depth{worker="0"}`,
		`evprop_worker_completed_total{worker="1"}`,
		`evprop_worker_state{`,
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %s", metric)
		}
	}
}
