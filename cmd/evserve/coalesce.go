package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"evprop"
	"evprop/internal/obs/trace"
	"evprop/internal/registry"
)

// Server-side micro-batching: when -batch-window is set, /v1/batch
// sub-queries with identical evidence are coalesced into one propagation.
// The first sub-query of an evidence signature opens a group and becomes its
// leader; sub-queries arriving within the window ride along. When the window
// closes the leader runs a single all-posteriors propagation and every
// member projects its own requested variables from the shared result.
//
// This sits above the engine's own cache and singleflight: those collapse
// queries that are in flight *simultaneously*, the window additionally
// gathers queries that arrive spread over the window. The shared run is
// detached from the leader's request context — a leader whose client
// disconnects must not void its riders — but keeps the server's per-request
// timeout.
//
// Groups are keyed by (model version, evidence signature): two models may
// share variable names and therefore evidence signatures, and one model's
// versions may swap mid-window, so the version pointer itself is part of
// the key — riders only ever project from a propagation of the exact
// engine build their batch pinned.

// coalesceKey identifies one open window: the pinned model version and
// the evidence signature within it.
type coalesceKey struct {
	v   *registry.Version
	sig string
}

// coalescer groups same-version same-evidence sub-queries inside a batch
// window.
type coalescer struct {
	window time.Duration
	mu     sync.Mutex
	groups map[coalesceKey]*coalesceGroup
	// coalesced counts sub-queries that rode on another sub-query's
	// propagation instead of running their own.
	coalesced atomic.Int64
}

func newCoalescer(window time.Duration) *coalescer {
	return &coalescer{window: window, groups: map[coalesceKey]*coalesceGroup{}}
}

// coalesceGroup is one open window's shared outcome. done is closed exactly
// once, after which the result fields are immutable and safe to read from
// any number of riders.
type coalesceGroup struct {
	done chan struct{}
	// leader is the leader sub-query's span (nil when tracing is off):
	// riders link themselves under it, so the leader's trace shows every
	// query its one propagation answered. Written before the group is
	// published under co.mu, read by riders after that same lock.
	leader *trace.Span
	pe     float64
	post   map[string][]float64
	err    error
}

// coalescedQuery answers one batch sub-query through the coalescer. It
// blocks for up to the batch window (plus the propagation) and returns the
// sub-query's projected response. v is the version the enclosing batch
// pinned; the batch holds its reference until every sub-query finishes, so
// the shared run's engine outlives the window.
func (s *server) coalescedQuery(ctx context.Context, model string, v *registry.Version, ms *modelStats, req queryRequest) (*queryResponse, error) {
	start := time.Now()
	ri := reqInfoFrom(ctx)
	ri.noteQuery(len(req.Evidence))
	// The signature both validates the evidence and keys the group; queries
	// the engine would cache together are exactly the ones that share it.
	sig, err := v.Engine.EvidenceSignature(req.Evidence, nil)
	if err != nil {
		return nil, err
	}
	key := coalesceKey{v: v, sig: sig}
	sp := trace.FromContext(ctx)
	co := s.co
	co.mu.Lock()
	g, rider := co.groups[key]
	if !rider {
		g = &coalesceGroup{done: make(chan struct{}), leader: sp}
		co.groups[key] = g
		co.mu.Unlock()
		go s.runCoalesced(ctx, key, g, req.Evidence)
	} else {
		co.mu.Unlock()
		co.coalesced.Add(1)
		// Cross-link the two traces: the rider's span records that it rode,
		// and the leader's trace gains a child naming the rider. The child
		// start is seal-safe — a leader that already finished (client gone)
		// simply yields no link.
		sp.SetAttr(trace.Bool("coalesced", true))
		if c := g.leader.StartChild("coalesced.rider",
			trace.String("rider.trace_id", sp.TraceID().String())); c != nil {
			c.End()
		}
	}
	select {
	case <-g.done:
	case <-ctx.Done():
		// This caller gives up; the shared run keeps going for the rest.
		return nil, ctx.Err()
	}
	if g.err != nil {
		s.auditQuery(ctx, v, req, nil, rider, time.Since(start), g.err)
		return nil, g.err
	}
	resp, err := projectQuery(v.Net, g, req)
	if err != nil {
		s.auditQuery(ctx, v, req, nil, rider, time.Since(start), err)
		return nil, err
	}
	resp.Model, resp.Version = model, v.ID
	elapsed := time.Since(start)
	tid := traceIDFrom(ctx)
	s.stats.observe(elapsed, tid)
	ms.latency.ObserveExemplar(elapsed, tid)
	// Riders are audited Cached — they were answered by a window-mate's
	// propagation, exactly like a cache hit.
	s.auditQuery(ctx, v, req, resp, rider, elapsed, nil)
	return resp, nil
}

// runCoalesced is the group leader: it holds the window open, then runs the
// one shared propagation and publishes the result. The run is detached from
// the leader's cancellation (riders depend on it) but re-bounded by the
// server's per-request timeout, and it keeps the leader's query ID so the
// flight-recorder entry correlates with the access log.
func (s *server) runCoalesced(leaderCtx context.Context, key coalesceKey, g *coalesceGroup, ev evprop.Evidence) {
	defer close(g.done)
	timer := time.NewTimer(s.co.window)
	defer timer.Stop()
	<-timer.C
	// Close enrollment before propagating: sub-queries arriving during the
	// propagation open a fresh window (and will typically hit the engine's
	// result cache).
	s.co.mu.Lock()
	delete(s.co.groups, key)
	s.co.mu.Unlock()

	runCtx := context.WithoutCancel(leaderCtx)
	if s.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, s.timeout)
		defer cancel()
	}
	res, err := key.v.Engine.PropagateContext(runCtx, ev)
	if err != nil {
		g.err = err
		return
	}
	defer res.Close()
	ri := reqInfoFrom(leaderCtx)
	ri.noteRun(res.Metrics())
	if s.cacheOn {
		ri.noteCache(res.Cached())
	}
	g.pe = res.ProbabilityOfEvidence()
	g.post = map[string][]float64{}
	if g.pe > 0 {
		if g.post, err = res.Posteriors(); err != nil {
			g.err = err
		}
	}
}

// projectQuery carves one sub-query's answer out of the group's shared
// all-posteriors result, mirroring runQuery's semantics: no requested
// variables means every non-evidence variable, and a requested variable that
// is itself evidence gets its exact one-hot posterior.
func projectQuery(net *evprop.Network, g *coalesceGroup, req queryRequest) (*queryResponse, error) {
	resp := &queryResponse{PEvidence: g.pe, Posteriors: map[string][]float64{}}
	if g.pe <= 0 {
		return resp, nil
	}
	if len(req.Query) == 0 {
		resp.Posteriors = g.post
		return resp, nil
	}
	for _, name := range req.Query {
		if p, ok := g.post[name]; ok {
			resp.Posteriors[name] = p
			continue
		}
		if state, ok := req.Evidence[name]; ok {
			oneHot := make([]float64, net.States(name))
			oneHot[state] = 1
			resp.Posteriors[name] = oneHot
			continue
		}
		return nil, fmt.Errorf("%w: %q", evprop.ErrUnknownVariable, name)
	}
	return resp, nil
}
