// Command evreplay reads the Merkle-chained audit segments evserve writes
// under -audit-dir and turns them back into traffic. It always verifies
// the chain first — a tampered or torn log is refused before a single
// query is replayed.
//
//	evreplay -dir ./audit -mode verify
//	evreplay -dir ./audit -mode dump
//	evreplay -dir ./audit -mode load -url http://localhost:8080 -speed 2
//	evreplay -dir ./audit -mode diff -network asia
//
// Modes:
//
//	verify  check the Merkle chain and print a summary (default)
//	dump    print every record as one JSON line
//	load    re-drive the recorded queries as live traffic and report
//	        throughput and latency; -speed 0 replays flat out, 1 at the
//	        recorded pacing, N at N× the recorded pacing
//	diff    re-execute every record and compare answers bit for bit:
//	        P(e), every posterior, MPE assignments and probabilities must
//	        match to the last float bit, and recorded failures must fail
//	        again; exits non-zero on any divergence
//
// The replay target is either a live evserve (-url, routed per record to
// the model that answered it) or an in-process engine compiled from
// -network/-bif — the latter is how a recorded log is checked against a
// new build without serving it.
//
// Against a live server, every replayed request carries a W3C traceparent
// derived deterministically from the record's query ID (SHA-256), so
// server-side traces and access logs correlate back to the audit log; in
// diff mode the traceparent is flagged sampled, and each mismatch prints
// the evtrace command that renders its kept span tree.
//
// Exit codes: 0 success, 1 diff mismatch, 2 verification or I/O failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"evprop"
	"evprop/client"
	"evprop/internal/audit"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(argv []string) int {
	fs := flag.NewFlagSet("evreplay", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "audit segment directory (required)")
		mode    = fs.String("mode", "verify", "verify, dump, load or diff")
		url     = fs.String("url", "", "replay against a live evserve at this base URL")
		network = fs.String("network", "", "replay on an in-process engine: asia, sprinkler, student")
		bifFile = fs.String("bif", "", "replay on an in-process engine compiled from this BIF file")
		workers = fs.Int("workers", 0, "in-process engine worker goroutines (0 = GOMAXPROCS)")
		speed   = fs.Float64("speed", 0, "load pacing: 0 = flat out, 1 = recorded, N = N× faster")
		conc    = fs.Int("concurrency", 8, "concurrent in-flight replays")
		limit   = fs.Int("limit", 0, "replay at most this many records (0 = all)")
		lazyOpt = fs.Bool("lazy", false, "in-process engine: zero-aware lazy propagation (match a server recorded with evserve -lazy)")
	)
	fs.Parse(argv) //nolint:errcheck // ExitOnError
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "evreplay: -dir is required")
		return 2
	}
	if *conc < 1 {
		*conc = 1
	}

	recs, summary, err := loadSegments(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evreplay:", err)
		return 2
	}
	fmt.Printf("verified: %d batches, %d records, chain head %s\n",
		summary.batches, len(recs), summary.head)
	if *limit > 0 && len(recs) > *limit {
		recs = recs[:*limit]
	}

	switch *mode {
	case "verify":
		return 0
	case "dump":
		if err := dumpRecords(os.Stdout, recs); err != nil {
			fmt.Fprintln(os.Stderr, "evreplay:", err)
			return 2
		}
		return 0
	case "load", "diff":
	default:
		fmt.Fprintf(os.Stderr, "evreplay: unknown -mode %q\n", *mode)
		return 2
	}

	tgt, closeTgt, err := buildTarget(*url, *network, *bifFile, *workers, *lazyOpt, *mode == "diff")
	if err != nil {
		fmt.Fprintln(os.Stderr, "evreplay:", err)
		return 2
	}
	defer closeTgt()
	ctx := context.Background()

	if *mode == "load" {
		rep := loadReplay(ctx, tgt, recs, *speed, *conc)
		fmt.Printf("replayed: %d records in %.3fs (%.1f qps), %d failed\n",
			rep.total, rep.elapsed.Seconds(), rep.qps(), rep.failed)
		fmt.Printf("latency: avg %.1fµs, max %.1fµs\n", rep.avgUsec(), rep.maxUsec)
		return 0
	}

	mismatches := diffReplay(ctx, tgt, recs, *conc)
	if len(mismatches) == 0 {
		fmt.Printf("diff: %d records, 0 mismatches\n", len(recs))
		return 0
	}
	for _, m := range mismatches {
		fmt.Fprintf(os.Stderr, "mismatch: record %d (%s %s): %s\n", m.rec.Seq, kindName(m.rec.Kind), m.rec.ID, m.reason)
		if *url != "" {
			// The replay ran under a trace ID derived from the record, flagged
			// sampled in diff mode — the server kept its span tree.
			fmt.Fprintf(os.Stderr, "  trace: evtrace -url %s -id %s\n", *url, recTraceparent(m.rec, false)[3:35])
		}
	}
	fmt.Fprintf(os.Stderr, "diff: %d records, %d mismatches\n", len(recs), len(mismatches))
	return 1
}

// buildTarget constructs the replay target: a live server when -url is
// set, otherwise an in-process engine from -network/-bif. sampled marks
// replayed traces always-keep (diff mode: mismatches deserve a waterfall).
func buildTarget(url, network, bifFile string, workers int, lazy, sampled bool) (target, func(), error) {
	if url != "" {
		if network != "" || bifFile != "" {
			return nil, nil, fmt.Errorf("-url and -network/-bif are mutually exclusive")
		}
		return &httpTarget{c: evclient.New(url), sampled: sampled}, func() {}, nil
	}
	net, err := replayNetwork(network, bifFile)
	if err != nil {
		return nil, nil, err
	}
	eng, err := net.Compile(evprop.Options{Workers: workers, Lazy: lazy})
	if err != nil {
		return nil, nil, err
	}
	return &engineTarget{eng: eng}, eng.Close, nil
}

func replayNetwork(network, bifFile string) (*evprop.Network, error) {
	if bifFile != "" {
		f, err := os.Open(bifFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		net, _, err := evprop.ParseBIF(f)
		return net, err
	}
	switch network {
	case "asia":
		return evprop.Asia(), nil
	case "sprinkler":
		return evprop.Sprinkler(), nil
	case "student":
		return evprop.Student(), nil
	case "":
		return nil, fmt.Errorf("replay needs a target: -url, -network or -bif")
	default:
		return nil, fmt.Errorf("unknown -network %q (want asia, sprinkler or student)", network)
	}
}

func kindName(k uint8) string {
	switch k {
	case audit.KindQuery:
		return "query"
	case audit.KindMPE:
		return "mpe"
	}
	return fmt.Sprintf("kind-%d", k)
}
