package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evprop"
	"evprop/client"
	"evprop/internal/audit"
)

// chainSummary is what verification learned about the log.
type chainSummary struct {
	batches int
	head    string
}

// loadSegments reads every segment in dir, verifies the Merkle chain, and
// decodes the records in order. Any verification or decode failure is
// fatal — replaying from an unverified log is never worth it.
func loadSegments(dir string) ([]*audit.Record, chainSummary, error) {
	batches, err := audit.ReadDir(dir)
	if err != nil {
		return nil, chainSummary{}, err
	}
	if err := audit.VerifyChain(batches); err != nil {
		return nil, chainSummary{}, fmt.Errorf("chain verification failed: %w", err)
	}
	var recs []*audit.Record
	sum := chainSummary{batches: len(batches), head: "empty"}
	for _, b := range batches {
		for _, raw := range b.Records {
			r, err := audit.DecodeRecord(raw)
			if err != nil {
				return nil, chainSummary{}, fmt.Errorf("batch %d: %w", b.Seq, err)
			}
			recs = append(recs, r)
		}
		sum.head = fmt.Sprintf("%x", b.Root[:8])
	}
	return recs, sum, nil
}

// dumpRecords writes one JSON line per record.
func dumpRecords(w io.Writer, recs []*audit.Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// answer is a replay target's normalized response to one record.
type answer struct {
	pe          float64
	posteriors  map[string][]float64
	assignment  map[string]int
	probability float64
}

// target re-executes recorded queries somewhere: against a live server or
// an in-process engine. Implementations must be safe for concurrent use.
type target interface {
	query(ctx context.Context, rec *audit.Record) (*answer, error)
	mpe(ctx context.Context, rec *audit.Record) (*answer, error)
}

// httpTarget replays against a live evserve, routing each record to the
// model that answered it. Every replayed request carries a traceparent
// derived deterministically from the record's query ID, so the server-side
// trace and access-log line of a replayed query are computable from the
// audit record alone — a diff mismatch correlates straight to its trace.
type httpTarget struct {
	c *evclient.Client
	// sampled sets the traceparent's sampled flag, forcing tail sampling to
	// keep every replayed trace. Diff mode sets it (mismatches are worth a
	// waterfall); load mode leaves the server's own sampling in charge.
	sampled bool
}

func (t *httpTarget) model(rec *audit.Record) string {
	if rec.Model == "" {
		return evclient.DefaultModel
	}
	return rec.Model
}

// recTraceparent derives the deterministic W3C traceparent for one record:
// the trace ID is the first 16 bytes of SHA-256 over the recorded query
// ID, the parent span ID the next 8. Replaying the same log twice emits
// the same trace IDs.
func recTraceparent(rec *audit.Record, sampled bool) string {
	sum := sha256.Sum256([]byte("evreplay:" + rec.ID))
	if isZero(sum[:16]) {
		sum[0] = 1 // the all-zero trace ID is invalid per W3C spec
	}
	if isZero(sum[16:24]) {
		sum[16] = 1
	}
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + hex.EncodeToString(sum[:16]) + "-" + hex.EncodeToString(sum[16:24]) + "-" + flags
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func (t *httpTarget) trace(ctx context.Context, rec *audit.Record) context.Context {
	return evclient.WithTraceparent(ctx, recTraceparent(rec, t.sampled))
}

func (t *httpTarget) query(ctx context.Context, rec *audit.Record) (*answer, error) {
	resp, err := t.c.Query(t.trace(ctx, rec), t.model(rec), evclient.Evidence(rec.Evidence), rec.Query...)
	if err != nil {
		return nil, err
	}
	return &answer{pe: resp.PEvidence, posteriors: resp.Posteriors}, nil
}

func (t *httpTarget) mpe(ctx context.Context, rec *audit.Record) (*answer, error) {
	resp, err := t.c.MPE(t.trace(ctx, rec), t.model(rec), evclient.Evidence(rec.Evidence))
	if err != nil {
		return nil, err
	}
	return &answer{assignment: resp.Assignment, probability: resp.Probability}, nil
}

// engineTarget replays on an in-process engine, mirroring the server's
// query semantics exactly: P(e) and posteriors from one propagation,
// posteriors only when P(e) > 0, projected onto the recorded query list.
type engineTarget struct {
	eng *evprop.Engine
}

func (t *engineTarget) query(ctx context.Context, rec *audit.Record) (*answer, error) {
	res, err := t.eng.PropagateContext(ctx, evprop.Evidence(rec.Evidence))
	if err != nil {
		return nil, err
	}
	defer res.Close()
	a := &answer{pe: res.ProbabilityOfEvidence(), posteriors: map[string][]float64{}}
	if a.pe > 0 {
		if a.posteriors, err = res.Posteriors(rec.Query...); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func (t *engineTarget) mpe(ctx context.Context, rec *audit.Record) (*answer, error) {
	assignment, p, err := t.eng.MostProbableExplanation(evprop.Evidence(rec.Evidence))
	if err != nil {
		return nil, err
	}
	return &answer{assignment: assignment, probability: p}, nil
}

// replayOne re-executes one record on the target.
func replayOne(ctx context.Context, tgt target, rec *audit.Record) (*answer, error) {
	if rec.Kind == audit.KindMPE {
		return tgt.mpe(ctx, rec)
	}
	return tgt.query(ctx, rec)
}

// mismatch is one record whose replay diverged from the recorded answer.
type mismatch struct {
	rec    *audit.Record
	reason string
}

// diffReplay re-executes every record and compares its answer against the
// recorded one, bit for bit. Records are processed concurrently; the
// returned mismatches are ordered by record sequence.
func diffReplay(ctx context.Context, tgt target, recs []*audit.Record, concurrency int) []mismatch {
	var mu sync.Mutex
	var out []mismatch
	runWorkers(recs, concurrency, func(rec *audit.Record) {
		got, err := replayOne(ctx, tgt, rec)
		if reason := compareRecord(rec, got, err); reason != "" {
			mu.Lock()
			out = append(out, mismatch{rec: rec, reason: reason})
			mu.Unlock()
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].rec.Seq < out[j].rec.Seq })
	return out
}

// compareRecord checks one replayed answer against its record; "" means
// they agree. Float comparisons are exact — Float64bits equality — since
// propagation on a fixed build is bit-deterministic; any drift is a real
// behavioral change.
func compareRecord(rec *audit.Record, got *answer, err error) string {
	if rec.Error != "" {
		if err == nil {
			return fmt.Sprintf("recorded failure %q succeeded on replay", rec.Error)
		}
		return ""
	}
	if err != nil {
		return fmt.Sprintf("recorded success failed on replay: %v", err)
	}
	if rec.Kind == audit.KindMPE {
		if math.Float64bits(got.probability) != math.Float64bits(rec.Probability) {
			return fmt.Sprintf("probability %v != recorded %v", got.probability, rec.Probability)
		}
		if len(got.assignment) != len(rec.Assignment) {
			return fmt.Sprintf("assignment has %d variables, recorded %d", len(got.assignment), len(rec.Assignment))
		}
		for name, state := range rec.Assignment {
			if g, ok := got.assignment[name]; !ok || g != state {
				return fmt.Sprintf("assignment[%s] = %d, recorded %d", name, got.assignment[name], state)
			}
		}
		return ""
	}
	if math.Float64bits(got.pe) != math.Float64bits(rec.PEvidence) {
		return fmt.Sprintf("P(e) %v != recorded %v", got.pe, rec.PEvidence)
	}
	if len(got.posteriors) != len(rec.Posteriors) {
		return fmt.Sprintf("%d posteriors, recorded %d", len(got.posteriors), len(rec.Posteriors))
	}
	for name, want := range rec.Posteriors {
		g, ok := got.posteriors[name]
		if !ok {
			return fmt.Sprintf("posterior %q missing on replay", name)
		}
		if len(g) != len(want) {
			return fmt.Sprintf("posterior %q has %d states, recorded %d", name, len(g), len(want))
		}
		for i := range want {
			if math.Float64bits(g[i]) != math.Float64bits(want[i]) {
				return fmt.Sprintf("posterior %q[%d] = %v, recorded %v", name, i, g[i], want[i])
			}
		}
	}
	return ""
}

// loadReport aggregates a load replay.
type loadReport struct {
	total, failed int
	elapsed       time.Duration
	sumUsec       float64
	maxUsec       float64
}

func (r *loadReport) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.total) / r.elapsed.Seconds()
}

func (r *loadReport) avgUsec() float64 {
	if r.total == 0 {
		return 0
	}
	return r.sumUsec / float64(r.total)
}

// loadReplay re-drives the records as live traffic. speed 0 replays flat
// out; speed s > 0 spaces records at their recorded inter-arrival gaps
// divided by s, preserving the traffic shape.
func loadReplay(ctx context.Context, tgt target, recs []*audit.Record, speed float64, concurrency int) loadReport {
	rep := loadReport{total: len(recs)}
	if len(recs) == 0 {
		return rep
	}
	var failed atomic.Int64
	var mu sync.Mutex
	start := time.Now()
	base := recs[0].TimeUnixNano
	runWorkers(recs, concurrency, func(rec *audit.Record) {
		if speed > 0 {
			due := start.Add(time.Duration(float64(rec.TimeUnixNano-base) / speed))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		t0 := time.Now()
		_, err := replayOne(ctx, tgt, rec)
		usec := float64(time.Since(t0).Nanoseconds()) / 1e3
		// A recorded failure failing again is the expected outcome, not a
		// load error.
		if (err != nil) != (rec.Error != "") {
			failed.Add(1)
		}
		mu.Lock()
		rep.sumUsec += usec
		if usec > rep.maxUsec {
			rep.maxUsec = usec
		}
		mu.Unlock()
	})
	rep.elapsed = time.Since(start)
	rep.failed = int(failed.Load())
	return rep
}

// runWorkers fans records out over a bounded worker pool, preserving
// nothing about ordering — callers that care collect and sort.
func runWorkers(recs []*audit.Record, concurrency int, fn func(*audit.Record)) {
	ch := make(chan *audit.Record)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range ch {
				fn(rec)
			}
		}()
	}
	for _, rec := range recs {
		ch <- rec
	}
	close(ch)
	wg.Wait()
}
