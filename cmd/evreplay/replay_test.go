package main

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"evprop"
	"evprop/internal/audit"
	"evprop/internal/obs/trace"
)

func asiaEngine(t *testing.T) *evprop.Engine {
	t.Helper()
	eng, err := evprop.Asia().Compile(evprop.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// recordQuery runs one query on eng and captures it as the server would
// have audited it.
func recordQuery(t *testing.T, eng *evprop.Engine, ev map[string]int, query []string) *audit.Record {
	t.Helper()
	rec := &audit.Record{
		Kind:         audit.KindQuery,
		TimeUnixNano: time.Now().UnixNano(),
		Model:        "default",
		Version:      1,
		Evidence:     ev,
		Query:        query,
	}
	res, err := eng.Propagate(evprop.Evidence(ev))
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	defer res.Close()
	rec.PEvidence = res.ProbabilityOfEvidence()
	rec.Posteriors = map[string][]float64{}
	if rec.PEvidence > 0 {
		if rec.Posteriors, err = res.Posteriors(query...); err != nil {
			t.Fatal(err)
		}
	}
	return rec
}

func recordMPE(t *testing.T, eng *evprop.Engine, ev map[string]int) *audit.Record {
	t.Helper()
	rec := &audit.Record{
		Kind:         audit.KindMPE,
		TimeUnixNano: time.Now().UnixNano(),
		Model:        "default",
		Version:      1,
		Evidence:     ev,
	}
	assignment, p, err := eng.MostProbableExplanation(evprop.Evidence(ev))
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	rec.Assignment, rec.Probability = assignment, p
	return rec
}

func testRecords(t *testing.T, eng *evprop.Engine) []*audit.Record {
	t.Helper()
	return []*audit.Record{
		recordQuery(t, eng, map[string]int{"XRay": 1}, []string{"Lung"}),
		recordQuery(t, eng, map[string]int{"XRay": 1, "Smoke": 0}, nil),
		recordQuery(t, eng, map[string]int{}, []string{"Asia", "Tub"}),
		recordQuery(t, eng, map[string]int{"NoSuchVariable": 1}, nil),
		recordMPE(t, eng, map[string]int{"XRay": 1}),
	}
}

func TestDiffReplayMatchesSameEngine(t *testing.T) {
	eng := asiaEngine(t)
	recs := testRecords(t, eng)
	if recs[3].Error == "" {
		t.Fatal("expected the unknown-variable record to be a failure")
	}
	tgt := &engineTarget{eng: eng}
	if ms := diffReplay(context.Background(), tgt, recs, 4); len(ms) != 0 {
		t.Fatalf("mismatches on identical engine: %v", ms[0].reason)
	}
}

func TestDiffReplayDetectsDivergence(t *testing.T) {
	eng := asiaEngine(t)
	tgt := &engineTarget{eng: eng}
	ctx := context.Background()

	// A single flipped mantissa bit in one posterior.
	r := recordQuery(t, eng, map[string]int{"XRay": 1}, []string{"Lung"})
	r.Posteriors["Lung"][0] = math.Float64frombits(math.Float64bits(r.Posteriors["Lung"][0]) ^ 1)
	if ms := diffReplay(ctx, tgt, []*audit.Record{r}, 1); len(ms) != 1 {
		t.Fatalf("flipped posterior bit: %d mismatches, want 1", len(ms))
	} else if !strings.Contains(ms[0].reason, "posterior") {
		t.Errorf("reason %q", ms[0].reason)
	}

	// A perturbed P(e).
	r = recordQuery(t, eng, map[string]int{"XRay": 1}, []string{"Lung"})
	r.PEvidence = math.Nextafter(r.PEvidence, 1)
	if ms := diffReplay(ctx, tgt, []*audit.Record{r}, 1); len(ms) != 1 {
		t.Fatal("perturbed P(e) not detected")
	}

	// A recorded failure that now succeeds.
	r = recordQuery(t, eng, map[string]int{"XRay": 1}, []string{"Lung"})
	r.Error, r.Posteriors, r.PEvidence = "synthetic failure", nil, 0
	ms := diffReplay(ctx, tgt, []*audit.Record{r}, 1)
	if len(ms) != 1 || !strings.Contains(ms[0].reason, "succeeded on replay") {
		t.Fatalf("vanished failure not detected: %v", ms)
	}

	// A perturbed MPE probability and a rewired assignment.
	r = recordMPE(t, eng, map[string]int{"XRay": 1})
	r.Probability = math.Nextafter(r.Probability, 1)
	if ms := diffReplay(ctx, tgt, []*audit.Record{r}, 1); len(ms) != 1 {
		t.Fatal("perturbed MPE probability not detected")
	}
	r = recordMPE(t, eng, map[string]int{"XRay": 1})
	for name := range r.Assignment {
		r.Assignment[name] = 1 - r.Assignment[name]
		break
	}
	if ms := diffReplay(ctx, tgt, []*audit.Record{r}, 1); len(ms) != 1 {
		t.Fatal("rewired MPE assignment not detected")
	}
}

// writeSegments spills records through the real writer into dir.
func writeSegments(t *testing.T, dir string, recs []*audit.Record) {
	t.Helper()
	store, err := audit.OpenFileStore(dir, audit.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := audit.NewWriter(store, audit.Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Enqueue(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyDumpAndDiff(t *testing.T) {
	eng := asiaEngine(t)
	dir := t.TempDir()
	writeSegments(t, dir, testRecords(t, eng))

	if code := run([]string{"-dir", dir, "-mode", "verify"}); code != 0 {
		t.Fatalf("verify exit %d", code)
	}
	if code := run([]string{"-dir", dir, "-mode", "dump"}); code != 0 {
		t.Fatalf("dump exit %d", code)
	}
	if code := run([]string{"-dir", dir, "-mode", "diff", "-network", "asia"}); code != 0 {
		t.Fatalf("diff exit %d, want 0", code)
	}
	if code := run([]string{"-dir", dir, "-mode", "diff", "-network", "asia", "-limit", "2"}); code != 0 {
		t.Fatalf("limited diff exit %d", code)
	}
}

func TestRunDiffCatchesTamperedAnswer(t *testing.T) {
	eng := asiaEngine(t)
	dir := t.TempDir()
	recs := testRecords(t, eng)
	// The recorded answer diverges from what the engine computes, but the
	// segment itself is honestly written — the chain verifies, the diff
	// must not.
	recs[0].PEvidence = math.Nextafter(recs[0].PEvidence, 1)
	writeSegments(t, dir, recs)
	if code := run([]string{"-dir", dir, "-mode", "diff", "-network", "asia"}); code != 1 {
		t.Fatalf("diff exit %d, want 1", code)
	}
}

func TestRunRefusesCorruptedChain(t *testing.T) {
	eng := asiaEngine(t)
	dir := t.TempDir()
	writeSegments(t, dir, testRecords(t, eng))
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the first frame's body.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-dir", dir, "-mode", "verify"}); code != 2 {
		t.Fatalf("tampered verify exit %d, want 2", code)
	}
}

func TestLoadReplay(t *testing.T) {
	eng := asiaEngine(t)
	recs := testRecords(t, eng)
	tgt := &engineTarget{eng: eng}
	rep := loadReplay(context.Background(), tgt, recs, 0, 4)
	if rep.total != len(recs) || rep.failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.qps() <= 0 || rep.avgUsec() <= 0 || rep.maxUsec < rep.avgUsec() {
		t.Errorf("latency accounting: %+v", rep)
	}
	// Recorded pacing: synthetic 5ms gaps at 10× speed still impose a
	// floor on the wall clock.
	for i, r := range recs {
		r.TimeUnixNano = int64(i) * (5 * time.Millisecond).Nanoseconds()
	}
	start := time.Now()
	rep = loadReplay(context.Background(), tgt, recs, 10, 4)
	if rep.failed != 0 {
		t.Fatalf("paced replay failed %d", rep.failed)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("paced replay finished in %v, expected pacing floor", elapsed)
	}
}

// TestRecTraceparent: the derived traceparent is deterministic, valid W3C
// (parses via the server's own parser), distinct per record, and carries
// the sampled flag only when asked.
func TestRecTraceparent(t *testing.T) {
	a := &audit.Record{ID: "q-000001"}
	b := &audit.Record{ID: "q-000002"}
	tpA := recTraceparent(a, true)
	if tpA != recTraceparent(a, true) {
		t.Error("traceparent not deterministic")
	}
	if tpA == recTraceparent(b, true) {
		t.Error("distinct records share a traceparent")
	}
	sc, ok := trace.ParseTraceparent(tpA)
	if !ok || !sc.IsValid() {
		t.Fatalf("derived traceparent %q does not parse", tpA)
	}
	if sc.Flags&trace.FlagSampled == 0 {
		t.Error("diff-mode traceparent not flagged sampled")
	}
	sc, ok = trace.ParseTraceparent(recTraceparent(a, false))
	if !ok || sc.Flags&trace.FlagSampled != 0 {
		t.Error("load-mode traceparent should be unsampled")
	}
	// Same trace ID either way — the flag is the only difference.
	if recTraceparent(a, true)[:36] != recTraceparent(a, false)[:36] {
		t.Error("sampled flag changed the trace ID")
	}
}
