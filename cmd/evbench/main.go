// Command evbench regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured values).
//
// Usage:
//
//	evbench [-fig all|5|6|7|8|9|reroot]
//	evbench -trace out.json [-workers 4]
//
// -trace runs one real traced propagation and writes the schedule as a
// Chrome trace_event JSON file (open in chrome://tracing or Perfetto).
//
// The experiments run on the simulated multicore machine of
// internal/machine, which substitutes for the paper's 8-core testbeds; the
// rerooting-overhead experiment additionally measures real wall-clock time
// of Algorithm 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"evprop/internal/buildinfo"
	"evprop/internal/experiments"
	"evprop/internal/machine"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 5, 6, 7, 8, 9, reroot, ablations, manycore, roster, real, heuristics, evidence")
	tracePath := flag.String("trace", "", "run one traced propagation and write a Chrome trace_event JSON file")
	traceWorkers := flag.Int("workers", 4, "workers for the -trace and -lazy runs")
	lazyCmp := flag.Bool("lazy", false, "measure lazy vs eager propagation (real wall clock) on the serving workload")
	lazyIters := flag.Int("lazy-iters", 200, "queries per engine for the -lazy comparison")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evbench"))
		return
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, *traceWorkers, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "evbench: trace:", err)
			os.Exit(1)
		}
		return
	}

	if *lazyCmp {
		if err := runLazy(os.Stdout, *traceWorkers, *lazyIters); err != nil {
			fmt.Fprintln(os.Stderr, "evbench: lazy:", err)
			os.Exit(1)
		}
		return
	}

	cm := machine.Default()
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("5", func() error {
		xeon, opteron, err := experiments.Fig5Both()
		if err != nil {
			return err
		}
		xeon.Write(os.Stdout)
		fmt.Println()
		opteron.Write(os.Stdout)
		return nil
	})
	run("reroot", func() error {
		r, err := experiments.RerootOverhead(cm)
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("6", func() error {
		r, err := experiments.Fig6(cm)
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("7", func() error {
		xeon, opteron, err := experiments.Fig7Both()
		if err != nil {
			return err
		}
		xeon.Write(os.Stdout)
		fmt.Println()
		opteron.Write(os.Stdout)
		return nil
	})
	run("8", func() error {
		r, err := experiments.Fig8(cm)
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("9", func() error {
		r, err := experiments.Fig9(cm)
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("ablations", func() error {
		co, err := experiments.CollectOnly(cm)
		if err != nil {
			return err
		}
		co.Write(os.Stdout)
		fmt.Println()
		a, err := experiments.AblationAllocation(cm)
		if err != nil {
			return err
		}
		a.Write(os.Stdout)
		fmt.Println()
		th, err := experiments.AblationThreshold(cm)
		if err != nil {
			return err
		}
		th.Write(os.Stdout)
		fmt.Println()
		rt, err := experiments.AblationRoot()
		if err != nil {
			return err
		}
		rt.Write(os.Stdout)
		fmt.Println()
		dc, err := experiments.Decomposition()
		if err != nil {
			return err
		}
		dc.Write(os.Stdout)
		return nil
	})
	run("manycore", func() error {
		r, err := experiments.ManyCore(cm)
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("roster", func() error {
		r, err := experiments.SchedulerRoster(cm)
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("heuristics", func() error {
		r, err := experiments.Heuristics()
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("real", func() error {
		r, err := experiments.Real(experiments.DefaultRealConfig())
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
	run("evidence", func() error {
		r, err := experiments.EvidenceCount(experiments.DefaultRealConfig())
		if err != nil {
			return err
		}
		r.Write(os.Stdout)
		return nil
	})
}
