package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"evprop"
)

// runLazy measures real wall-clock lazy-vs-eager query latency on the
// serving workload (the same 40-node network as the serving benchmarks),
// for a sparse-evidence and a dense-evidence configuration, and reports
// median latencies, the speedup, and the lazy engine's pruning counters.
func runLazy(w io.Writer, workers, iters int) error {
	net := evprop.RandomNetwork(40, 2, 3, 7)
	vars := net.Variables()
	workloads := []struct {
		name string
		ev   evprop.Evidence
	}{
		{"sparse (2 observed)", evprop.Evidence{vars[3]: 1, vars[17]: 0}},
		{"dense (20 observed)", func() evprop.Evidence {
			ev := evprop.Evidence{vars[3]: 1, vars[17]: 0}
			for i := 0; i < len(vars); i += 2 {
				ev[vars[i]] = i % 2
			}
			return ev
		}()},
	}

	fmt.Fprintf(w, "Lazy vs eager propagation — real wall clock, %d workers, median of %d queries\n", workers, iters)
	fmt.Fprintf(w, "workload: RandomNetwork(40,2,3,7), 3 target posteriors per query\n\n")
	for _, wl := range workloads {
		var query []string
		for _, v := range []string{vars[1], vars[20], vars[39]} {
			if _, fixed := wl.ev[v]; !fixed {
				query = append(query, v)
			}
		}
		var med [2]time.Duration
		var stats evprop.PropagationStats
		for mode, lazy := range map[int]bool{0: false, 1: true} {
			eng, err := net.Compile(evprop.Options{Workers: workers, Lazy: lazy})
			if err != nil {
				return err
			}
			lat := make([]time.Duration, 0, iters)
			for i := 0; i < iters; i++ {
				start := time.Now()
				res, err := eng.Propagate(wl.ev)
				if err != nil {
					eng.Close()
					return err
				}
				if _, err := res.Posteriors(query...); err != nil {
					eng.Close()
					return err
				}
				lat = append(lat, time.Since(start))
				if lazy && i == 0 {
					stats, _ = res.PropagationStats()
				}
				res.Close()
			}
			sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
			med[mode] = lat[len(lat)/2]
			eng.Close()
		}
		fmt.Fprintf(w, "%-22s eager %9v   lazy %9v   speedup %.2fx\n",
			wl.name, med[0], med[1], float64(med[0])/float64(med[1]))
		fmt.Fprintf(w, "%-22s messages sent/blocked/skipped %d/%d/%d, tasks %d of %d, flops %d of %d (%.0f%% pruned), materialized %d entries\n\n",
			"", stats.MessagesSent, stats.MessagesBlocked, stats.MessagesSkipped,
			stats.TasksRun, stats.TasksRun+stats.TasksSkipped,
			stats.Flops, stats.FlopsFull,
			100*(1-float64(stats.Flops)/float64(stats.FlopsFull)),
			stats.MaterializedEntries)
	}
	return nil
}
