package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteTraceRoundTrip runs the -trace mode end to end: the exported file
// must be valid Chrome trace_event JSON whose slices stay within the run's
// makespan and map onto real worker tids.
func TestWriteTraceRoundTrip(t *testing.T) {
	const workers = 3
	path := filepath.Join(t.TempDir(), "trace.json")
	var summary strings.Builder
	if err := writeTrace(path, workers, &summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "load balance") {
		t.Errorf("summary missing the observability report:\n%s", summary.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Ph  string   `json:"ph"`
			Ts  float64  `json:"ts"`
			Dur *float64 `json:"dur"`
			Tid int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	slices, pieces := 0, 0
	var maxEnd float64
	for _, e := range f.TraceEvents {
		if e.Tid < 0 || e.Tid >= workers {
			t.Errorf("event tid %d out of range", e.Tid)
		}
		if e.Ph != "X" {
			continue
		}
		slices++
		if e.Ts < 0 {
			t.Errorf("slice starts at %v", e.Ts)
		}
		if e.Dur != nil && e.Ts+*e.Dur > maxEnd {
			maxEnd = e.Ts + *e.Dur
		}
	}
	if slices == 0 {
		t.Fatal("trace has no slices")
	}
	// The workload is sized so partitioning fires: some slice names carry a
	// piece range. Check via the raw text to keep the decode struct small.
	if strings.Contains(string(raw), "[0,") {
		pieces++
	}
	if pieces == 0 {
		t.Error("no partitioned pieces in the trace; the -trace workload should split tasks")
	}
	if maxEnd <= 0 {
		t.Error("no slice has positive extent")
	}
}
