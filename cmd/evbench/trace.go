package main

import (
	"fmt"
	"io"
	"os"

	"evprop/internal/jtree"
	"evprop/internal/obs"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// traceWorkload runs one traced collaborative propagation sized so that
// partitioning actually fires, and returns its metrics. Shared by -trace and
// its test.
func traceWorkload(workers int) (*sched.Metrics, error) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 48, Width: 8, States: 2, Degree: 3, Seed: 11})
	if err != nil {
		return nil, err
	}
	if err := tr.MaterializeRandom(7); err != nil {
		return nil, err
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		return nil, err
	}
	// A small δ forces the Partition module to split the wide potential
	// operations, so the exported trace shows pieces and combiners too.
	return sched.Run(st, sched.Options{Workers: workers, Threshold: 32, Trace: true})
}

// writeTrace runs the trace workload and exports its schedule as a Chrome
// trace_event JSON file (load into chrome://tracing or https://ui.perfetto.dev),
// printing the run's observability report to summary.
func writeTrace(path string, workers int, summary io.Writer) error {
	m, err := traceWorkload(workers)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Trace.ToChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	obs.FromSched(m).Write(summary)
	fmt.Fprintf(summary, "trace: %d events → %s\n", len(m.Trace.Events), path)
	return nil
}
