package main

import (
	"errors"
	"strings"
	"testing"
	"time"

	"evprop"
	evclient "evprop/client"
)

func testSnap(at time.Time, busy0, busy1 int64) snapshot {
	return snapshot{
		Time:         at,
		UptimeSec:    125,
		QPS:          42.5,
		ErrorRate:    0.01,
		P50Usec:      300,
		P99Usec:      1800,
		CacheHitRate: 0.87,
		Propagations: 1234,
		Scheduler:    "collaborative",
		Workers:      2,
		Gauges: evprop.SchedulerGauges{
			GlobalDepth: 3,
			ActiveRuns:  1,
			Workers: []evprop.WorkerGauges{
				{State: "executing", QueueDepth: 2, QueueWeight: 40, BusyNs: busy0, Items: 100, Steals: 1, StealAttempts: 4, Partitions: 7},
				{State: "parked", BusyNs: busy1, Items: 90},
			},
		},
	}
}

// TestFrameRendersWorkers: two snapshots one second apart must yield a frame
// with a header, sparklines, and one row per worker whose utilization comes
// from the busy-time delta.
func TestFrameRendersWorkers(t *testing.T) {
	t0 := time.Unix(1000, 0)
	m := &model{url: "http://x:8080"}
	m.observe(testSnap(t0, 0, 0))
	// Worker 0 burns 500ms of the 1s interval, worker 1 nothing.
	m.observe(testSnap(t0.Add(time.Second), 500_000_000, 0))
	f := m.frame()
	for _, want := range []string{
		"evtop — http://x:8080", "collaborative/2 workers", "up 00:02:05",
		"qps    42.5", "p99   1.8ms", "cache hit  87.0%",
		"GL depth 3", "active runs 1",
		"executing", "parked", " 50%", "  0%",
	} {
		if !strings.Contains(f, want) {
			t.Errorf("frame missing %q:\n%s", want, f)
		}
	}
	if lines := strings.Count(f, "\n"); lines < 8 {
		t.Errorf("frame has only %d lines:\n%s", lines, f)
	}
}

// TestFrameEmptyAndDisconnected: the zero model and a dropped connection
// must both render without panicking.
func TestFrameEmptyAndDisconnected(t *testing.T) {
	m := &model{url: "http://x:8080"}
	if f := m.frame(); !strings.Contains(f, "no per-worker gauges") {
		t.Errorf("empty frame:\n%s", f)
	}
	m.observe(testSnap(time.Unix(1000, 0), 0, 0))
	m.disconnected(errors.New("connection refused"))
	f := m.frame()
	if !strings.Contains(f, "RECONNECTING") || !strings.Contains(f, "connection refused") {
		t.Errorf("disconnected frame lacks status:\n%s", f)
	}
}

// TestFrameStatsLine: the /v1/stats row shows the lifetime cache hit rate
// and flags audit drops; without a poll the row is absent; with auditing
// off it says so.
func TestFrameStatsLine(t *testing.T) {
	m := &model{url: "http://x:8080"}
	m.observe(testSnap(time.Unix(1000, 0), 0, 0))
	if f := m.frame(); strings.Contains(f, "cache off") || strings.Contains(f, "audit") {
		t.Errorf("stats row rendered before any poll:\n%s", f)
	}
	st := &evclient.Stats{}
	st.Cache.Enabled = true
	st.Cache.Capacity = 64
	st.Cache.Entries = 12
	st.Cache.Hits = 90
	st.Cache.Misses = 10
	st.Audit.Enabled = true
	st.Audit.Enqueued = 1000
	st.Audit.Dropped = 3
	m.observeStats(st)
	f := m.frame()
	for _, want := range []string{
		"cache 12/64 entries", "life hit  90.0%", "audit enq 1000 drop 3 (0.30%) !",
	} {
		if !strings.Contains(f, want) {
			t.Errorf("stats row missing %q:\n%s", want, f)
		}
	}
	m.observeStats(&evclient.Stats{})
	if f := m.frame(); !strings.Contains(f, "cache off") || !strings.Contains(f, "audit off") {
		t.Errorf("disabled stats row:\n%s", f)
	}
}

// TestSparklineAndBar pin the drawing helpers' edge cases.
func TestSparklineAndBar(t *testing.T) {
	if s := sparkline(nil, 10); s != "" {
		t.Errorf("empty sparkline %q", s)
	}
	s := sparkline([]float64{0, 1, 2, 4}, 10)
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length %d", len([]rune(s)))
	}
	if !strings.HasSuffix(s, "█") || !strings.HasPrefix(s, "▁") {
		t.Errorf("sparkline shape %q", s)
	}
	// All-zero history stays on the floor instead of dividing by zero.
	if s := sparkline([]float64{0, 0, 0}, 10); s != "▁▁▁" {
		t.Errorf("flat sparkline %q", s)
	}
	if b := bar(0.5, 10); strings.Count(b, "█") != 5 || strings.Count(b, "░") != 5 {
		t.Errorf("half bar %q", b)
	}
	if b := bar(2.0, 4); b != "████" {
		t.Errorf("overfull bar %q", b)
	}
	if b := bar(-1, 4); b != "░░░░" {
		t.Errorf("negative bar %q", b)
	}
}
