// Command evtop is a terminal dashboard for a running evserve: it consumes
// the GET /v1/stream Server-Sent-Events feed and redraws per-worker
// utilization and queue-depth bars, steal and split counters, QPS and p99
// sparklines, and the cache hit rate once a second, in place.
//
//	evtop -url http://localhost:8080
//	evtop -url http://localhost:8080 -once   # one frame, no ANSI, then exit
//
// It has no dependencies beyond the standard library and degrades to a
// reconnect loop (with the connection error on the status line) whenever the
// server goes away. Ctrl-C exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	evclient "evprop/client"
	"evprop/internal/buildinfo"
)

// reconnectDelay paces the retry loop when the server is unreachable.
const reconnectDelay = time.Second

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080", "evserve base URL")
		once    = flag.Bool("once", false, "print one frame (no ANSI) and exit")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evtop"))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, strings.TrimRight(*url, "/"), *once); err != nil {
		fmt.Fprintln(os.Stderr, "evtop:", err)
		os.Exit(1)
	}
}

// run drives the connect → stream → render loop until ctx is canceled, or
// until the first frame in -once mode.
func run(ctx context.Context, url string, once bool) error {
	m := &model{url: url}
	c := evclient.New(url)
	drew := false
	for {
		err := c.Stream(ctx, func(s snapshot) bool {
			m.observe(s)
			// One stats poll per stream event (~1 Hz): the cache and audit
			// counters the SSE snapshot does not carry. Failures keep the
			// previous poll — the row goes stale, not blank.
			if st, serr := c.Stats(ctx); serr == nil {
				m.observeStats(st)
			}
			if once {
				fmt.Print(m.frame())
				return false
			}
			draw(m, &drew)
			return true
		})
		if once && m.count > 0 {
			return nil
		}
		if ctx.Err() != nil {
			if drew {
				fmt.Print("\x1b[0m\n")
			}
			return nil
		}
		if once {
			return err
		}
		m.disconnected(err)
		draw(m, &drew)
		select {
		case <-ctx.Done():
			fmt.Print("\x1b[0m\n")
			return nil
		case <-time.After(reconnectDelay):
		}
	}
}

// draw repaints the frame in place: clear the screen once on the first
// frame, then home the cursor and rewrite each line (ESC[K erases what a
// previously longer line left behind).
func draw(m *model, drew *bool) {
	if !*drew {
		fmt.Print("\x1b[2J")
		*drew = true
	}
	var b strings.Builder
	b.WriteString("\x1b[H")
	for _, line := range strings.Split(strings.TrimRight(m.frame(), "\n"), "\n") {
		b.WriteString(line)
		b.WriteString("\x1b[K\n")
	}
	b.WriteString("\x1b[J") // clear anything below (worker count shrank)
	fmt.Print(b.String())
}
