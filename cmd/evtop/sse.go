package main

import (
	"bufio"
	"io"
	"strings"
)

// sseEvent is one Server-Sent-Events frame: the last id: field and the
// data: payload (multiple data lines joined with newlines, per the spec).
type sseEvent struct {
	id   string
	data string
}

// scanEvents parses an SSE byte stream, calling fn once per complete event.
// fn returning false stops the scan early (clean stop, nil error); otherwise
// scanning continues until the stream ends. A trailing event without a
// terminating blank line is discarded, mirroring browser EventSource.
func scanEvents(r io.Reader, fn func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ev sseEvent
	dispatch := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			if dispatch {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
			dispatch = false
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue // comment / keep-alive
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			ev.id = value
		case "data":
			if ev.data != "" {
				ev.data += "\n"
			}
			ev.data += value
			dispatch = true
		}
	}
	return sc.Err()
}
