package main

import (
	"fmt"
	"strings"
	"time"

	evclient "evprop/client"
)

// snapshot is one /v1/stream event, decoded by the evclient package (the
// wire format is the contract, not the type).
type snapshot = evclient.Snapshot

// histLen bounds the sparkline history (one entry per stream event).
const histLen = 60

// model is the dashboard state: the two latest snapshots (utilization is a
// rate, so it needs a delta) plus bounded history for the sparklines.
type model struct {
	url       string
	cur, prev snapshot
	count     int // snapshots seen since (re)connect
	qpsHist   []float64
	p99Hist   []float64
	connected bool
	lastErr   string
	// util is per-worker busy-time fraction over the last inter-snapshot
	// interval, computed in observe.
	util []float64
	// stats is the latest /v1/stats poll (nil until the first succeeds): the
	// lifetime cache counters and the audit pipeline's drop counters, which
	// the SSE stream does not carry.
	stats *evclient.Stats
}

// observeStats folds one /v1/stats poll into the model.
func (m *model) observeStats(st *evclient.Stats) { m.stats = st }

// observe folds one stream event into the model.
func (m *model) observe(s snapshot) {
	m.prev, m.cur = m.cur, s
	m.count++
	m.connected = true
	m.lastErr = ""
	m.qpsHist = pushHist(m.qpsHist, s.QPS)
	m.p99Hist = pushHist(m.p99Hist, s.P99Usec)
	m.util = m.util[:0]
	wall := s.Time.Sub(m.prev.Time)
	for i, w := range s.Gauges.Workers {
		u := 0.0
		if m.count > 1 && wall > 0 && i < len(m.prev.Gauges.Workers) {
			u = float64(w.BusyNs-m.prev.Gauges.Workers[i].BusyNs) / float64(wall.Nanoseconds())
		}
		m.util = append(m.util, clamp01(u))
	}
}

// disconnected records a dropped stream so the frame can say so.
func (m *model) disconnected(err error) {
	m.connected = false
	m.count = 0
	if err != nil {
		m.lastErr = err.Error()
	}
}

func pushHist(h []float64, v float64) []float64 {
	h = append(h, v)
	if len(h) > histLen {
		h = h[len(h)-histLen:]
	}
	return h
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// sparkTicks are the eight block glyphs a sparkline is drawn with.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last `width` values scaled against their own max.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkTicks)-1))
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// bar renders a fixed-width utilization bar, e.g. "██████░░░░".
func bar(frac float64, width int) string {
	filled := int(clamp01(frac)*float64(width) + 0.5)
	return strings.Repeat("█", filled) + strings.Repeat("░", width-filled)
}

// fmtDur prints microseconds with a sensible unit.
func fmtDur(usec float64) string {
	switch {
	case usec >= 1e6:
		return fmt.Sprintf("%.2fs", usec/1e6)
	case usec >= 1e3:
		return fmt.Sprintf("%.1fms", usec/1e3)
	default:
		return fmt.Sprintf("%.0fµs", usec)
	}
}

func fmtUptime(sec float64) string {
	d := time.Duration(sec * float64(time.Second)).Round(time.Second)
	h := int(d.Hours())
	return fmt.Sprintf("%02d:%02d:%02d", h, int(d.Minutes())%60, int(d.Seconds())%60)
}

// statsLine renders the /v1/stats-sourced row: lifetime cache hit rate and
// the audit pipeline's drop counters, so audit backpressure (records lost
// to a slow disk) is visible live, not just in Prometheus.
func (m *model) statsLine() string {
	if m.stats == nil {
		return ""
	}
	var b strings.Builder
	cs := m.stats.Cache
	if cs.Enabled {
		rate := 0.0
		if n := cs.Hits + cs.Misses; n > 0 {
			rate = float64(cs.Hits) / float64(n)
		}
		fmt.Fprintf(&b, "cache %d/%d entries   life hit %5.1f%%   collapsed %d",
			cs.Entries, cs.Capacity, rate*100, cs.Collapsed)
	} else {
		b.WriteString("cache off")
	}
	au := m.stats.Audit
	if au.Enabled {
		dropRate := 0.0
		if au.Enqueued > 0 {
			dropRate = float64(au.Dropped) / float64(au.Enqueued)
		}
		fmt.Fprintf(&b, "   audit enq %d drop %d (%.2f%%)", au.Enqueued, au.Dropped, dropRate*100)
		if au.Dropped > 0 {
			b.WriteString(" !")
		}
	} else {
		b.WriteString("   audit off")
	}
	b.WriteString("\n")
	return b.String()
}

// frame renders the whole dashboard as one string of \n-joined lines, no
// ANSI control — positioning is the caller's concern, which keeps this pure
// and directly testable.
func (m *model) frame() string {
	var b strings.Builder
	s := m.cur
	status := "live"
	if !m.connected {
		status = "RECONNECTING"
		if m.lastErr != "" {
			status += " (" + m.lastErr + ")"
		}
	}
	fmt.Fprintf(&b, "evtop — %s   %s/%d workers   up %s   [%s]\n",
		m.url, s.Scheduler, s.Workers, fmtUptime(s.UptimeSec), status)
	fmt.Fprintf(&b, "qps %7.1f %s\n", s.QPS, sparkline(m.qpsHist, 30))
	fmt.Fprintf(&b, "p99 %7s %s   p50 %s\n", fmtDur(s.P99Usec), sparkline(m.p99Hist, 30), fmtDur(s.P50Usec))
	fmt.Fprintf(&b, "err %6.2f%%   cache hit %5.1f%%   balance %.2f   window reqs %d\n",
		s.ErrorRate*100, s.CacheHitRate*100, s.LoadBalance, s.Requests)
	fmt.Fprintf(&b, "GL depth %d   active runs %d   propagations %d   errors %d\n",
		s.Gauges.GlobalDepth, s.Gauges.ActiveRuns, s.Propagations, s.Errors)
	b.WriteString(m.statsLine())
	b.WriteString("\n")
	if len(s.Gauges.Workers) == 0 {
		b.WriteString("(no per-worker gauges)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%3s  %-9s  %-16s  %5s  %6s  %9s  %11s  %6s\n",
		"W", "STATE", "UTIL", "QUEUE", "WT", "ITEMS", "STEALS", "SPLITS")
	for i, w := range s.Gauges.Workers {
		u := 0.0
		if i < len(m.util) {
			u = m.util[i]
		}
		fmt.Fprintf(&b, "%3d  %-9s  %s %3.0f%%  %5d  %6d  %9d  %5d/%-5d  %6d\n",
			i, w.State, bar(u, 10), u*100,
			w.QueueDepth, w.QueueWeight, w.Items, w.Steals, w.StealAttempts, w.Partitions)
	}
	return b.String()
}
