package main

import (
	"strings"
	"testing"
	"time"

	evclient "evprop/client"
)

// fixture builds the span tree a -drive 2 batch produces: remote-parented
// root, two batch.item children, the leader's pipeline stages, one rider.
func fixture() *evclient.TraceResponse {
	t0 := time.Unix(1000, 0)
	at := func(off, dur time.Duration, name, spanID, parent string, attrs map[string]any) evclient.TraceSpan {
		return evclient.TraceSpan{
			SpanID: spanID, ParentSpanID: parent, Name: name,
			Start: t0.Add(off), DurationUsec: float64(dur.Nanoseconds()) / 1e3,
			Attrs: attrs,
		}
	}
	return &evclient.TraceResponse{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		Sampled: true,
		Reason:  "flagged",
		Spans: []evclient.TraceSpan{
			at(0, 10*time.Millisecond, "/v1/batch", "aaaaaaaaaaaaaaaa", "00f067aa0ba902b7",
				map[string]any{"http.status": float64(200)}),
			at(time.Millisecond, 8*time.Millisecond, "batch.item", "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa",
				map[string]any{"batch.index": float64(0)}),
			at(time.Millisecond, 100*time.Microsecond, "cache.lookup", "cccccccccccccccc", "bbbbbbbbbbbbbbbb",
				map[string]any{"cache.hit": false}),
			at(2*time.Millisecond, time.Millisecond, "absorb", "dddddddddddddddd", "bbbbbbbbbbbbbbbb", nil),
			at(3*time.Millisecond, 6*time.Millisecond, "propagate", "eeeeeeeeeeeeeeee", "bbbbbbbbbbbbbbbb",
				map[string]any{
					"tasks":            float64(42),
					"lazy.msg_sent":    float64(10),
					"lazy.msg_blocked": float64(5),
					"lazy.msg_skipped": float64(3),
					"lazy.flops":       float64(250),
					"lazy.flops_full":  float64(1000),
				}),
			at(4*time.Millisecond, time.Millisecond, "kind.SumProduct", "ffffffffffffffff", "eeeeeeeeeeeeeeee", nil),
			at(5*time.Millisecond, 4*time.Millisecond, "batch.item", "1111111111111111", "aaaaaaaaaaaaaaaa",
				map[string]any{"batch.index": float64(1)}),
			at(6*time.Millisecond, 10*time.Microsecond, "coalesced.rider", "2222222222222222", "bbbbbbbbbbbbbbbb",
				map[string]any{"rider.trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"}),
		},
	}
}

// TestWaterfall: tree shape, indentation, shares, and the inline extras
// (cache verdict, lazy pruning fraction, rider link).
func TestWaterfall(t *testing.T) {
	out := waterfall(fixture(), 20)
	for _, want := range []string{
		"trace 4bf92f3577b34da6a3ce929d0e0e4736",
		"8 spans, kept: flagged, sampled",
		"/v1/batch", "  batch.item", "    cache.lookup", "    propagate",
		"      kind.SumProduct",
		"10.00ms", "100.0%",
		"cache.hit=false",
		"lazy sent/blocked/skipped=10/5/3", "pruned=75%",
		"rider=4bf92f35…",
		"http.status=200",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	// The root's bar spans the full width; a late short span is offset.
	lines := strings.Split(out, "\n")
	var rootLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "/v1/batch") {
			rootLine = l
		}
	}
	if !strings.Contains(rootLine, strings.Repeat("█", 20)) {
		t.Errorf("root bar not full-width: %q", rootLine)
	}
}

// TestWaterfallEmpty: a trace with no spans renders its header only.
func TestWaterfallEmpty(t *testing.T) {
	out := waterfall(&evclient.TraceResponse{TraceID: "ab", Reason: "head"}, 20)
	if !strings.Contains(out, "0 spans") || strings.Count(out, "\n") != 1 {
		t.Errorf("empty trace render:\n%s", out)
	}
}

// TestAssertTrace: the smoke-mode checks pass on the fixture and flag each
// violation class.
func TestAssertTrace(t *testing.T) {
	tr := fixture()
	if problems := assertTrace(tr, tr.TraceID, "00f067aa0ba902b7", 2); len(problems) != 0 {
		t.Fatalf("fixture should pass: %v", problems)
	}
	if p := assertTrace(tr, "deadbeef", "00f067aa0ba902b7", 2); len(p) == 0 {
		t.Error("wrong trace ID not flagged")
	}
	if p := assertTrace(tr, tr.TraceID, "ffffffffffffffff", 2); len(p) == 0 {
		t.Error("wrong root parent not flagged")
	}
	if p := assertTrace(tr, tr.TraceID, "00f067aa0ba902b7", 3); len(p) == 0 {
		t.Error("missing batch.item not flagged")
	}
	// Strip the rider: n>1 must then fail.
	norider := *tr
	norider.Spans = nil
	for _, sp := range tr.Spans {
		if sp.Name != "coalesced.rider" {
			norider.Spans = append(norider.Spans, sp)
		}
	}
	if p := assertTrace(&norider, tr.TraceID, "00f067aa0ba902b7", 2); len(p) == 0 {
		t.Error("missing rider not flagged")
	}
	// Swap stage order: propagate before absorb must fail.
	swapped := *tr
	swapped.Spans = append([]evclient.TraceSpan(nil), tr.Spans...)
	for i := range swapped.Spans {
		if swapped.Spans[i].Name == "propagate" {
			swapped.Spans[i].Start = time.Unix(999, 0)
		}
	}
	if p := assertTrace(&swapped, tr.TraceID, "00f067aa0ba902b7", 2); len(p) == 0 {
		t.Error("stage disorder not flagged")
	}
}
