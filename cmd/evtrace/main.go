// Command evtrace fetches distributed traces from a running evserve and
// renders them as terminal waterfalls: one line per span, indented by
// parent link, with duration, share of the request, a time-positioned bar,
// and the interesting attributes (cache hit, singleflight role, lazy
// pruning counters) inline.
//
//	evtrace -url http://localhost:8080                # list recently kept traces
//	evtrace -url http://localhost:8080 -id <32 hex>   # waterfall one trace
//	evtrace -url http://localhost:8080 -drive 3       # send a traced 3-query batch, render its trace
//	evtrace -url http://localhost:8080 -drive 3 -assert
//
// -drive mints a sampled W3C traceparent, sends one /v1/batch of n
// identical queries under it (identical so the server's coalescer turns
// the extras into riders), then fetches the trace back by the minted ID.
// -assert additionally verifies the span tree — caller's parent preserved
// on the root, pipeline stages present and ordered, rider children linked
// — and exits non-zero on any violation, which is what `make smoke-trace`
// runs. Like the rest of the tooling it is standard-library only.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	evclient "evprop/client"
	"evprop/internal/buildinfo"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080", "evserve base URL")
		id      = flag.String("id", "", "trace ID to fetch (32 hex chars); empty lists recent traces")
		model   = flag.String("model", evclient.DefaultModel, "model to drive queries at")
		drive   = flag.Int("drive", 0, "send one traced batch of this many identical queries, then render its trace")
		assert  = flag.Bool("assert", false, "with -drive: verify the span tree and exit non-zero on violations")
		timeout = flag.Duration("timeout", 5*time.Second, "overall deadline")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evtrace"))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := evclient.New(strings.TrimRight(*url, "/"))
	if err := run(ctx, c, *model, *id, *drive, *assert); err != nil {
		fmt.Fprintln(os.Stderr, "evtrace:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, c *evclient.Client, model, id string, drive int, assert bool) error {
	switch {
	case drive > 0:
		return driveAndRender(ctx, c, model, drive, assert)
	case id != "":
		tr, err := c.Trace(ctx, id)
		if err != nil {
			return err
		}
		fmt.Print(waterfall(tr, barWidth))
		return nil
	default:
		ids, err := c.RecentTraces(ctx)
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Println("no traces retained (tail sampling keeps slow, failed and caller-flagged requests)")
			return nil
		}
		for _, tid := range ids {
			fmt.Println(tid)
		}
		return nil
	}
}

// driveAndRender sends one traced batch of n identical queries and renders
// (and optionally asserts) the resulting span tree.
func driveAndRender(ctx context.Context, c *evclient.Client, model string, n int, assert bool) error {
	tp, traceID := evclient.NewTraceparent(true) // sampled: tail sampling must keep it
	queries := make([]evclient.BatchQuery, n)
	for i := range queries {
		queries[i] = evclient.BatchQuery{Evidence: evclient.Evidence{}}
	}
	br, err := c.Batch(evclient.WithTraceparent(ctx, tp), model, queries)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	for i, r := range br.Results {
		if r.Error != "" {
			return fmt.Errorf("batch result %d: %s", i, r.Error)
		}
	}
	tr, err := awaitTrace(ctx, c, traceID)
	if err != nil {
		return err
	}
	fmt.Print(waterfall(tr, barWidth))
	if assert {
		parentSpan := strings.Split(tp, "-")[2]
		if problems := assertTrace(tr, traceID, parentSpan, n); len(problems) > 0 {
			return fmt.Errorf("span-tree assertions failed:\n  %s", strings.Join(problems, "\n  "))
		}
		fmt.Printf("asserts ok: root parent preserved, stages ordered, %d rider(s) linked\n", countSpans(tr, "coalesced.rider"))
	}
	return nil
}

// awaitTrace polls for the trace: the root span finishes after the batch
// response is written, so the store can trail the client by a beat.
func awaitTrace(ctx context.Context, c *evclient.Client, id string) (*evclient.TraceResponse, error) {
	for {
		tr, err := c.Trace(ctx, id)
		if err == nil {
			return tr, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("trace %s not retained: %w (last: %v)", id, ctx.Err(), err)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
