package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	evclient "evprop/client"
)

// barWidth is the waterfall column's width in cells.
const barWidth = 32

// waterfall renders a fetched trace as an indented span tree with one
// time-positioned bar per span, scaled to the whole trace. Pure string in,
// string out — directly testable, positioning is the terminal's concern.
func waterfall(tr *evclient.TraceResponse, width int) string {
	var b strings.Builder
	flags := tr.Reason
	if tr.Sampled {
		flags += ", sampled"
	}
	fmt.Fprintf(&b, "trace %s  (%d spans, kept: %s)\n", tr.TraceID, len(tr.Spans), flags)
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(&b, "  ! %d span(s) dropped to arena overflow\n", tr.DroppedSpans)
	}
	if len(tr.Spans) == 0 {
		return b.String()
	}

	// Index the tree. A span whose parent is absent from the trace is a
	// root (the remote caller's span, or the request root when untraced
	// upstream).
	byID := map[string]evclient.TraceSpan{}
	children := map[string][]evclient.TraceSpan{}
	for _, sp := range tr.Spans {
		byID[sp.SpanID] = sp
	}
	var roots []evclient.TraceSpan
	for _, sp := range tr.Spans {
		if _, ok := byID[sp.ParentSpanID]; sp.ParentSpanID != "" && ok {
			children[sp.ParentSpanID] = append(children[sp.ParentSpanID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []evclient.TraceSpan) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	// The time axis spans the earliest start to the latest end.
	t0 := roots[0].Start
	var t1 time.Time
	for _, sp := range tr.Spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
		if end := spanEnd(sp); end.After(t1) {
			t1 = end
		}
	}
	total := t1.Sub(t0)
	if total <= 0 {
		total = time.Microsecond
	}

	// Name column width: longest indented name, capped.
	nameW := 0
	var measure func(sp evclient.TraceSpan, depth int)
	measure = func(sp evclient.TraceSpan, depth int) {
		if w := 2*depth + len(sp.Name); w > nameW {
			nameW = w
		}
		for _, c := range children[sp.SpanID] {
			measure(c, depth+1)
		}
	}
	for _, r := range roots {
		measure(r, 0)
	}
	if nameW > 40 {
		nameW = 40
	}

	var render func(sp evclient.TraceSpan, depth int)
	render = func(sp evclient.TraceSpan, depth int) {
		name := strings.Repeat("  ", depth) + sp.Name
		share := sp.DurationUsec / (float64(total.Nanoseconds()) / 1e3) * 100
		fmt.Fprintf(&b, "%-*s %9s %5.1f%% ▕%s▏", nameW, name,
			fmtUsec(sp.DurationUsec), share, bar(sp, t0, total, width))
		if extra := spanExtras(sp); extra != "" {
			b.WriteString(" " + extra)
		}
		b.WriteString("\n")
		for _, c := range children[sp.SpanID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}

func spanEnd(sp evclient.TraceSpan) time.Time {
	return sp.Start.Add(time.Duration(sp.DurationUsec * 1e3))
}

// bar draws a span's interval on the shared time axis: spaces up to its
// offset, blocks for its duration (at least one cell).
func bar(sp evclient.TraceSpan, t0 time.Time, total time.Duration, width int) string {
	off := int(float64(sp.Start.Sub(t0)) / float64(total) * float64(width))
	n := int(sp.DurationUsec * 1e3 / float64(total) * float64(width))
	if n < 1 {
		n = 1
	}
	if off > width-1 {
		off = width - 1
	}
	if off+n > width {
		n = width - off
	}
	return strings.Repeat(" ", off) + strings.Repeat("█", n) + strings.Repeat(" ", width-off-n)
}

// spanExtras picks the attributes worth a waterfall cell: failure status,
// cache verdicts, singleflight role, plan reuse, and the lazy engine's
// pruning counters (with the pruned-work fraction computed inline).
func spanExtras(sp evclient.TraceSpan) string {
	var parts []string
	if sp.Status != "" {
		parts = append(parts, "FAIL("+sp.Status+")")
	}
	attrs := sp.Attrs
	if v, ok := attrs["cache.hit"].(bool); ok {
		parts = append(parts, fmt.Sprintf("cache.hit=%v", v))
	}
	for _, k := range []string{"role", "plan", "scheduler"} {
		if v, ok := attrs[k].(string); ok {
			parts = append(parts, k+"="+v)
		}
	}
	for _, k := range []string{"tasks", "workers", "evidence.vars", "batch.index", "http.status"} {
		if v, ok := attrs[k].(float64); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", k, int64(v)))
		}
	}
	// Lazy pruning counters: sent/blocked/skipped plus the fraction of
	// full-propagation flops the zero-aware plan avoided.
	if sent, ok := attrs["lazy.msg_sent"].(float64); ok {
		blocked, _ := attrs["lazy.msg_blocked"].(float64)
		skipped, _ := attrs["lazy.msg_skipped"].(float64)
		parts = append(parts, fmt.Sprintf("lazy sent/blocked/skipped=%d/%d/%d",
			int64(sent), int64(blocked), int64(skipped)))
		if full, ok := attrs["lazy.flops_full"].(float64); ok && full > 0 {
			flops, _ := attrs["lazy.flops"].(float64)
			parts = append(parts, fmt.Sprintf("pruned=%.0f%%", (1-flops/full)*100))
		}
	}
	if v, ok := attrs["rider.trace_id"].(string); ok {
		parts = append(parts, "rider="+v[:8]+"…")
	}
	return strings.Join(parts, " ")
}

// fmtUsec prints a µs duration with a sensible unit.
func fmtUsec(usec float64) string {
	switch {
	case usec >= 1e6:
		return fmt.Sprintf("%.2fs", usec/1e6)
	case usec >= 1e3:
		return fmt.Sprintf("%.2fms", usec/1e3)
	default:
		return fmt.Sprintf("%.0fµs", usec)
	}
}

func countSpans(tr *evclient.TraceResponse, name string) int {
	n := 0
	for _, sp := range tr.Spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}

func findSpan(tr *evclient.TraceResponse, name string) (evclient.TraceSpan, bool) {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return evclient.TraceSpan{}, false
}

// assertTrace verifies the span-tree properties `make smoke-trace` relies
// on for a -drive n batch: the caller's trace identity survived, the
// caller's span parents the root, the pipeline stages are present in
// order, every sub-query has its span, and (n>1) at least one coalesced
// rider links into the leader's tree. Returns the violations, empty when
// the tree checks out.
func assertTrace(tr *evclient.TraceResponse, traceID, parentSpan string, n int) []string {
	var problems []string
	if tr.TraceID != traceID {
		problems = append(problems, fmt.Sprintf("trace ID %s, want the minted %s", tr.TraceID, traceID))
	}
	if !tr.Sampled {
		problems = append(problems, "caller's sampled flag was dropped")
	}
	// The batch root is route-named: /v1/batch on the default alias,
	// /v1/models/{name}/batch on the model-scoped route evclient uses.
	root, ok := findSpan(tr, "/v1/batch")
	if !ok {
		root, ok = findSpan(tr, "/v1/models/{name}/batch")
	}
	if !ok {
		problems = append(problems, "no batch root span")
	} else if root.ParentSpanID != parentSpan {
		problems = append(problems, fmt.Sprintf("root parent %q, want the caller's span %q", root.ParentSpanID, parentSpan))
	}
	absorb, haveAbsorb := findSpan(tr, "absorb")
	prop, haveProp := findSpan(tr, "propagate")
	switch {
	case !haveAbsorb:
		problems = append(problems, "no absorb stage span")
	case !haveProp:
		problems = append(problems, "no propagate stage span")
	case prop.Start.Before(absorb.Start):
		problems = append(problems, "propagate started before absorb — stages out of order")
	}
	if items := countSpans(tr, "batch.item"); items != n {
		problems = append(problems, fmt.Sprintf("%d batch.item spans, want %d", items, n))
	}
	if n > 1 && countSpans(tr, "coalesced.rider") == 0 {
		problems = append(problems, "no coalesced.rider span — riders did not link into the leader's tree (is -batch-window set?)")
	}
	return problems
}
