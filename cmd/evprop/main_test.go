package main

import "testing"

func TestParseEvidence(t *testing.T) {
	ev, err := parseEvidence("A=1, B=0,C=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 3 || ev["A"] != 1 || ev["B"] != 0 || ev["C"] != 2 {
		t.Errorf("ev = %v", ev)
	}
	if ev, err := parseEvidence(""); err != nil || len(ev) != 0 {
		t.Errorf("empty evidence: %v, %v", ev, err)
	}
	for _, bad := range []string{"A", "A=x", "=1", "A=1,B"} {
		if _, err := parseEvidence(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestBuildNetwork(t *testing.T) {
	for _, kind := range []string{"asia", "sprinkler", "student", "random"} {
		n, err := buildNetwork(kind, 10, 2, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", kind, err)
		}
	}
	if _, err := buildNetwork("bogus", 0, 0, 0, 0); err == nil {
		t.Error("accepted bogus network kind")
	}
}
