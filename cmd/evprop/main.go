// Command evprop runs exact inference on a Bayesian network from the
// command line.
//
// Usage:
//
//	evprop -network asia -evidence XRay=1,Smoke=0 -query Lung,Bronc
//	evprop -network random -nodes 40 -states 2 -parents 3 -seed 7 -query all
//	evprop -bif model.bif -evidence Node=1 -query all
//
// Flags select the scheduler, worker count, rerooting and the partition
// threshold, mirroring the public evprop package's Options.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"evprop"
	"evprop/internal/buildinfo"
)

func main() {
	var (
		network   = flag.String("network", "asia", "network: asia, sprinkler, student, random")
		bifFile   = flag.String("bif", "", "load the network from a BIF file (.bif text, .xml/.xbif XMLBIF) instead of -network")
		nodes     = flag.Int("nodes", 30, "random network: node count")
		states    = flag.Int("states", 2, "random network: states per variable")
		parents   = flag.Int("parents", 3, "random network: max parents per node")
		seed      = flag.Int64("seed", 1, "random network: generator seed")
		evidence  = flag.String("evidence", "", "comma-separated Name=state observations")
		query     = flag.String("query", "all", "comma-separated variables to query, or 'all'")
		scheduler = flag.String("scheduler", evprop.SchedulerCollaborative, "scheduler: collaborative, serial, levelsync, dataparallel, centralized")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		noReroot  = flag.Bool("no-reroot", false, "disable critical-path rerooting (Algorithm 1)")
		threshold = flag.Int("threshold", 0, "partition threshold δ in table entries (0 = auto, <0 = off)")
		mpe       = flag.Bool("mpe", false, "also report the most probable explanation")
		approx    = flag.String("approx", "", "use approximate inference: lw (likelihood weighting) or gibbs")
		samples   = flag.Int("samples", 20000, "sample count for -approx")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evprop"))
		return
	}

	net, err := buildNetwork(*network, *nodes, *states, *parents, *seed)
	if err != nil {
		fatal(err)
	}
	if *bifFile != "" {
		f, err := os.Open(*bifFile)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*bifFile, ".xml") || strings.HasSuffix(*bifFile, ".xbif") {
			net, _, err = evprop.ParseXMLBIF(f)
		} else {
			net, _, err = evprop.ParseBIF(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		*network = *bifFile
	}
	eng, err := net.Compile(evprop.Options{
		Workers:            *workers,
		Scheduler:          *scheduler,
		DisableReroot:      *noReroot,
		PartitionThreshold: *threshold,
	})
	if err != nil {
		fatal(err)
	}

	ev, err := parseEvidence(*evidence)
	if err != nil {
		fatal(err)
	}

	nc, mw := eng.Cliques()
	fmt.Printf("network %s: %d variables, junction tree with %d cliques (max width %d)\n",
		*network, len(net.Variables()), nc, mw)

	pe, err := eng.ProbabilityOfEvidence(ev)
	if err != nil {
		fatal(err)
	}
	if len(ev) > 0 {
		fmt.Printf("P(evidence) = %.6g\n", pe)
		if pe == 0 {
			fatal(fmt.Errorf("evidence has zero probability; posteriors undefined"))
		}
	}

	var queryVars []string
	if *query == "all" {
		for _, name := range net.Variables() {
			if _, fixed := ev[name]; !fixed {
				queryVars = append(queryVars, name)
			}
		}
	} else {
		queryVars = strings.Split(*query, ",")
	}
	var post map[string][]float64
	if *approx != "" {
		post, err = net.QueryApprox(*approx, ev, *samples, *seed, queryVars...)
	} else {
		post, err = eng.Query(ev, queryVars...)
	}
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(post))
	for name := range post {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("P(%s | e) =", name)
		for _, p := range post[name] {
			fmt.Printf(" %.6f", p)
		}
		fmt.Println()
	}

	if *mpe {
		assignment, p, err := eng.MostProbableExplanation(ev)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("most probable explanation (P = %.6g):\n", p)
		mpeNames := make([]string, 0, len(assignment))
		for name := range assignment {
			mpeNames = append(mpeNames, name)
		}
		sort.Strings(mpeNames)
		for _, name := range mpeNames {
			fmt.Printf("  %s = %d\n", name, assignment[name])
		}
	}
}

func buildNetwork(kind string, nodes, states, parents int, seed int64) (*evprop.Network, error) {
	switch kind {
	case "asia":
		return evprop.Asia(), nil
	case "sprinkler":
		return evprop.Sprinkler(), nil
	case "student":
		return evprop.Student(), nil
	case "random":
		return evprop.RandomNetwork(nodes, states, parents, seed), nil
	default:
		return nil, fmt.Errorf("unknown network %q", kind)
	}
}

func parseEvidence(s string) (evprop.Evidence, error) {
	ev := evprop.Evidence{}
	if s == "" {
		return ev, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("evidence %q is not Name=state", pair)
		}
		state, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("evidence %q: %v", pair, err)
		}
		ev[strings.TrimSpace(name)] = state
	}
	return ev, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evprop:", err)
	os.Exit(1)
}
