// Command evgen generates junction trees for experiments and writes them as
// JSON (readable back via internal/jtree.ReadJSON).
//
// Usage:
//
//	evgen -kind random -n 256 -width 10 -states 2 -degree 4 -seed 3 -o jt.json
//	evgen -kind template -branches 4 -n 512 -width 15 -o template.json
//
// With -materialize the clique potentials are filled with seeded random
// entries so the tree can be executed, not just simulated; without it a
// compact skeleton is written.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"evprop/internal/bayesnet"
	"evprop/internal/bif"
	"evprop/internal/buildinfo"
	"evprop/internal/jtree"
)

func main() {
	var (
		kind        = flag.String("kind", "random", "kind: random, template, chain, star, balanced (junction trees); network (Bayesian network)")
		n           = flag.Int("n", 128, "number of cliques (random/template/chain)")
		width       = flag.Int("width", 8, "clique width")
		states      = flag.Int("states", 2, "states per variable")
		degree      = flag.Int("degree", 4, "children per internal clique (random)")
		sep         = flag.Int("sep", 0, "separator width (0 = generator default)")
		branches    = flag.Int("branches", 4, "extra branches b (template) / branches (star)")
		depth       = flag.Int("depth", 3, "depth (balanced)")
		fanout      = flag.Int("fanout", 2, "fanout (balanced)")
		seed        = flag.Int64("seed", 1, "generator seed")
		materialize = flag.Bool("materialize", false, "fill clique potentials with seeded random entries")
		reroot      = flag.Bool("reroot", false, "apply Algorithm 1 before writing")
		stats       = flag.Bool("stats", false, "print structural statistics to stderr")
		render      = flag.Bool("render", false, "print an ASCII rendering to stderr (truncated at 40 lines)")
		format      = flag.String("format", "bif", "network output format: bif, xmlbif (kind=network only)")
		out         = flag.String("o", "-", "output file (- = stdout)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("evgen"))
		return
	}

	if *kind == "network" {
		if err := emitNetwork(*n, *states, *degree, *seed, *format, *out); err != nil {
			fatal(err)
		}
		return
	}
	tree, err := build(*kind, *n, *width, *states, *degree, *sep, *branches, *depth, *fanout, *seed)
	if err != nil {
		fatal(err)
	}
	if *materialize {
		if err := tree.MaterializeRandom(*seed); err != nil {
			fatal(err)
		}
	}
	if *reroot {
		before, _ := tree.CriticalPath()
		tree, err = tree.Reroot(tree.SelectRoot())
		if err != nil {
			fatal(err)
		}
		after, _ := tree.CriticalPath()
		fmt.Fprintf(os.Stderr, "evgen: rerooted at clique %d, critical path %.0f -> %.0f\n",
			tree.Root, before, after)
	}

	if *stats {
		tree.ComputeStats().Write(os.Stderr)
	}
	if *render {
		tree.Render(os.Stderr, 40)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tree.WriteJSON(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "evgen: wrote %d cliques (critical path weight %.0f, total weight %.0f)\n",
		tree.N(), criticalWeight(tree), tree.TotalWeight())
}

func criticalWeight(t *jtree.Tree) float64 {
	w, _ := t.CriticalPath()
	return w
}

func build(kind string, n, width, states, degree, sep, branches, depth, fanout int, seed int64) (*jtree.Tree, error) {
	switch kind {
	case "random":
		return jtree.Random(jtree.RandomConfig{
			N: n, Width: width, States: states, Degree: degree, SepSize: sep, Seed: seed,
		})
	case "template":
		return jtree.Template(jtree.TemplateConfig{
			Branches: branches, TotalCliques: n, Width: width, States: states, SepSize: sep,
		})
	case "chain":
		return jtree.Chain(n, width, states)
	case "star":
		return jtree.Star(branches, width, states)
	case "balanced":
		return jtree.Balanced(depth, fanout, width, states)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

// emitNetwork writes a random Bayesian network in the requested format.
func emitNetwork(nodes, states, maxParents int, seed int64, format, out string) error {
	net := bayesnet.RandomNetwork(nodes, states, maxParents, seed)
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "bif":
		return bif.Write(w, net, "generated", nil)
	case "xmlbif":
		return bif.WriteXML(w, net, "generated", nil)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evgen:", err)
	os.Exit(1)
}
