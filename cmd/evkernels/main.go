// evkernels times the five potential-table primitives directly — blocked
// (run-decomposed) kernel vs the per-entry scalar reference — and writes the
// results as JSON. It is the source of BENCH_kernels.json:
//
//	go run ./cmd/evkernels -out BENCH_kernels.json
//
// Each measurement repeats the primitive over the whole table until at least
// -min-entries entries have been processed, takes the median of -iters such
// samples, and reports ns/entry. -iters 1 is the smoke mode wired into
// `make check`: it validates the harness and the JSON shape in well under a
// second without producing publication-quality numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"evprop/internal/potential"
)

type shape struct {
	Name    string `json:"size"`
	Entries int    `json:"entries"`
	SubSize int    `json:"subset_entries"`
	sup     *potential.Potential
	sub     *potential.Potential
}

type result struct {
	Primitive string  `json:"primitive"`
	Size      string  `json:"size"`
	Entries   int     `json:"entries"`
	BlockedNs float64 `json:"ns_per_entry_blocked"`
	ScalarNs  float64 `json:"ns_per_entry_scalar"`
	Speedup   float64 `json:"speedup"`
}

type report struct {
	CPU        string   `json:"cpu"`
	GoVersion  string   `json:"go_version"`
	Iterations int      `json:"iterations"`
	MinEntries int      `json:"min_entries_per_sample"`
	Results    []result `json:"results"`
}

func shapes() []shape {
	mk := func(name string, nSup, nSub, states int) shape {
		vars := make([]int, nSup)
		card := make([]int, nSup)
		for i := range vars {
			vars[i] = i
			card[i] = states
		}
		rng := rand.New(rand.NewSource(17))
		sup := potential.MustNew(vars, card)
		sub := potential.MustNew(vars[:nSub], card[:nSub])
		for i := range sup.Data {
			sup.Data[i] = rng.Float64() + 0.5
		}
		// The subset table is exactly 1.0 everywhere: multiply and divide
		// are repeated thousands of times over the same work table per
		// sample, and any other factor would drift it into denormals
		// (slow on x86) or infinity. Multiplying by 1.0 costs the same
		// cycles as any normal operand.
		for i := range sub.Data {
			sub.Data[i] = 1.0
		}
		return shape{name, sup.Len(), sub.Len(), sup, sub}
	}
	// The clique→separator shape the engine partitions: the subset is a
	// prefix of the superset variables, so trailing variables are absent
	// and the run plan produces constant-subset-index slices.
	return []shape{
		mk("small", 3, 2, 4),  // 64 entries
		mk("medium", 6, 3, 4), // 4096 entries
		mk("large", 9, 4, 4),  // 262144 entries
	}
}

// sample times fn repeated until minEntries table entries are processed and
// returns ns/entry.
func sample(entries, minEntries int, fn func()) float64 {
	reps := (minEntries + entries - 1) / entries
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps*entries)
}

func median(iters, entries, minEntries int, fn func()) float64 {
	fn() // warm up
	xs := make([]float64, iters)
	for i := range xs {
		xs[i] = sample(entries, minEntries, fn)
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func main() {
	iters := flag.Int("iters", 5, "samples per measurement (median taken); 1 = smoke mode")
	minEntries := flag.Int("min-entries", 1<<21, "minimum table entries processed per sample")
	out := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()

	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "evkernels:", err)
			os.Exit(1)
		}
	}

	rep := report{
		CPU:        fmt.Sprintf("%s/%s %d cores", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		GoVersion:  runtime.Version(),
		Iterations: *iters,
		MinEntries: *minEntries,
	}
	for _, sh := range shapes() {
		n := sh.Entries
		p, q := sh.sup, sh.sub
		work := p.Clone()
		dstSub := q.CloneZero()
		dstSup := p.CloneZero()
		prims := []struct {
			name            string
			blocked, scalar func()
		}{
			{"multiply",
				func() { check(work.MulRange(q, 0, n)) },
				func() { check(work.MulRangeScalar(q, 0, n)) }},
			{"divide",
				func() { check(work.DivRange(q, 0, n)) },
				func() { check(work.DivRangeScalar(q, 0, n)) }},
			{"marginalize",
				func() { check(p.MarginalInto(dstSub, 0, n)) },
				func() { check(p.MarginalIntoScalar(dstSub, 0, n)) }},
			{"max-marginalize",
				func() { check(p.MaxMarginalInto(dstSub, 0, n)) },
				func() { check(p.MaxMarginalIntoScalar(dstSub, 0, n)) }},
			{"extend",
				func() { check(q.ExtendInto(dstSup, 0, n)) },
				func() { check(q.ExtendIntoScalar(dstSup, 0, n)) }},
		}
		for _, pr := range prims {
			b := median(*iters, n, *minEntries, pr.blocked)
			s := median(*iters, n, *minEntries, pr.scalar)
			rep.Results = append(rep.Results, result{
				Primitive: pr.name,
				Size:      sh.Name,
				Entries:   n,
				BlockedNs: round3(b),
				ScalarNs:  round3(s),
				Speedup:   round2(s / b),
			})
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(*out, buf, 0o644)
	}
	check(err)
}

func round3(x float64) float64 { return float64(int(x*1000+0.5)) / 1000 }
func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
