package evprop

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func wetGrassNetwork(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	n.MustAddVariable("Rain", 2, nil, []float64{0.8, 0.2})
	n.MustAddVariable("Wet", 2, []string{"Rain"}, []float64{
		0.9, 0.1,
		0.2, 0.8,
	})
	return n
}

func TestAddVariableErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddVariable("A", 2, []string{"missing"}, []float64{1, 0}); err == nil {
		t.Error("accepted unknown parent")
	}
	if err := n.AddVariable("A", 2, nil, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVariable("A", 2, nil, []float64{0.5, 0.5}); err == nil {
		t.Error("accepted duplicate variable")
	}
}

func TestVariablesAndStates(t *testing.T) {
	n := wetGrassNetwork(t)
	vars := n.Variables()
	if len(vars) != 2 || vars[0] != "Rain" || vars[1] != "Wet" {
		t.Errorf("Variables = %v", vars)
	}
	if n.States("Rain") != 2 || n.States("missing") != 0 {
		t.Error("States wrong")
	}
	if err := n.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestQueryMatchesBayesRule(t *testing.T) {
	n := wetGrassNetwork(t)
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	post, err := eng.Query(Evidence{"Wet": 1}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	// P(R=1|W=1) = 0.2·0.8 / (0.2·0.8 + 0.8·0.1) = 0.16/0.24 = 2/3.
	if got := post["Rain"][1]; math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("P(Rain|Wet) = %v, want 2/3", got)
	}
}

func TestQueryAllSchedulers(t *testing.T) {
	for _, s := range []string{
		SchedulerCollaborative, SchedulerSerial, SchedulerLevelSync,
		SchedulerDataParallel, SchedulerCentralized, SchedulerWorkStealing,
	} {
		n := Asia()
		eng, err := n.Compile(Options{Workers: 3, Scheduler: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		post, err := eng.Query(Evidence{"XRay": 1}, "Lung", "Tub")
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		want, err := n.ExactMarginal("Lung", Evidence{"XRay": 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(post["Lung"][1]-want[1]) > 1e-9 {
			t.Errorf("%s: P(Lung|XRay) = %v, oracle %v", s, post["Lung"], want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Compile(Options{}); err == nil {
		t.Error("compiled empty network")
	}
	n2 := wetGrassNetwork(t)
	if _, err := n2.Compile(Options{Scheduler: "bogus"}); err == nil {
		t.Error("accepted bogus scheduler")
	}
}

func TestQueryAll(t *testing.T) {
	n := Sprinkler()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	post, err := eng.QueryAll(Evidence{"WetGrass": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != 3 {
		t.Errorf("QueryAll returned %d posteriors, want 3", len(post))
	}
	if _, has := post["WetGrass"]; has {
		t.Error("QueryAll returned the evidence variable")
	}
	if math.Abs(post["Rain"][1]-0.7079) > 1e-3 {
		t.Errorf("P(Rain|Wet) = %v, want ≈0.7079", post["Rain"][1])
	}
}

func TestProbabilityOfEvidence(t *testing.T) {
	n := wetGrassNetwork(t)
	eng, err := n.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.ProbabilityOfEvidence(Evidence{"Wet": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.24) > 1e-9 {
		t.Errorf("P(Wet=1) = %v, want 0.24", p)
	}
}

func TestMostProbableState(t *testing.T) {
	n := Student()
	eng, err := n.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	state, p, err := eng.MostProbableState(Evidence{"Letter": 1, "SAT": 1}, "Intelligence")
	if err != nil {
		t.Fatal(err)
	}
	if state != 1 {
		t.Errorf("most probable Intelligence = %d, want 1 (high)", state)
	}
	if p <= 0.5 || p > 1 {
		t.Errorf("posterior %v implausible", p)
	}
}

func TestEvidenceErrors(t *testing.T) {
	n := wetGrassNetwork(t)
	eng, err := n.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(Evidence{"missing": 0}, "Rain"); err == nil {
		t.Error("accepted evidence on unknown variable")
	}
	if _, err := eng.Query(nil, "missing"); err == nil {
		t.Error("accepted query of unknown variable")
	}
	if _, err := eng.Query(Evidence{"Wet": 7}, "Rain"); err == nil {
		t.Error("accepted out-of-range evidence state")
	}
}

func TestCliques(t *testing.T) {
	eng, err := Asia().Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, w := eng.Cliques()
	if n < 4 || w < 2 || w > 4 {
		t.Errorf("Cliques = (%d, %d)", n, w)
	}
}

func TestRandomNetworkPublic(t *testing.T) {
	n := RandomNetwork(12, 2, 3, 4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := n.Compile(Options{Workers: 4, PartitionThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	vars := n.Variables()
	ev := Evidence{vars[0]: 0}
	post, err := eng.QueryAll(ev)
	if err != nil {
		t.Fatal(err)
	}
	for name, dist := range post {
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("posterior of %s sums to %v", name, sum)
		}
		want, err := n.ExactMarginal(name, ev)
		if err != nil {
			t.Fatal(err)
		}
		for s := range dist {
			if math.Abs(dist[s]-want[s]) > 1e-9 {
				t.Errorf("P(%s|e) = %v, oracle %v", name, dist, want)
				break
			}
		}
	}
}

func TestPartitionThresholdModes(t *testing.T) {
	n := Asia()
	for _, thr := range []int{-1, 0, 2, 1000} {
		eng, err := n.Compile(Options{PartitionThreshold: thr, Workers: 2})
		if err != nil {
			t.Fatalf("threshold %d: %v", thr, err)
		}
		post, err := eng.Query(Evidence{"Dysp": 1}, "Bronc")
		if err != nil {
			t.Fatalf("threshold %d: %v", thr, err)
		}
		want, err := n.ExactMarginal("Bronc", Evidence{"Dysp": 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(post["Bronc"][1]-want[1]) > 1e-9 {
			t.Errorf("threshold %d: P = %v, oracle %v", thr, post["Bronc"], want)
		}
	}
}

func TestBuiltinNetworksValidate(t *testing.T) {
	for name, n := range map[string]*Network{
		"Asia": Asia(), "Sprinkler": Sprinkler(), "Student": Student(),
	} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMostProbableExplanation(t *testing.T) {
	n := Sprinkler()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mpe, p, err := eng.MostProbableExplanation(Evidence{"WetGrass": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mpe) != 4 {
		t.Fatalf("MPE covers %d variables: %v", len(mpe), mpe)
	}
	if mpe["WetGrass"] != 1 {
		t.Error("MPE contradicts evidence")
	}
	if p <= 0 || p > 1 {
		t.Errorf("conditional MPE probability %v out of range", p)
	}
	// Brute force over the 8 non-evidence configurations.
	bestP := 0.0
	var bestC, bestS, bestR int
	for c := 0; c < 2; c++ {
		for s := 0; s < 2; s++ {
			for r := 0; r < 2; r++ {
				pe, err := eng.ProbabilityOfEvidence(Evidence{
					"Cloudy": c, "Sprinkler": s, "Rain": r, "WetGrass": 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if pe > bestP {
					bestP, bestC, bestS, bestR = pe, c, s, r
				}
			}
		}
	}
	if mpe["Cloudy"] != bestC || mpe["Sprinkler"] != bestS || mpe["Rain"] != bestR {
		t.Errorf("MPE = %v, brute force wants C=%d S=%d R=%d", mpe, bestC, bestS, bestR)
	}
	pw, err := eng.ProbabilityOfEvidence(Evidence{"WetGrass": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-bestP/pw) > 1e-9 {
		t.Errorf("MPE conditional probability %v, want %v", p, bestP/pw)
	}
}

func TestMostProbableExplanationErrors(t *testing.T) {
	n := wetGrassNetwork(t)
	eng, err := n.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.MostProbableExplanation(Evidence{"missing": 1}); err == nil {
		t.Error("accepted unknown evidence variable")
	}
}

func TestBIFPublicRoundTrip(t *testing.T) {
	n := Asia()
	var buf bytes.Buffer
	if err := n.WriteBIF(&buf, "asia", map[string][]string{"Asia": {"no", "yes"}}); err != nil {
		t.Fatal(err)
	}
	back, states, err := ParseBIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := states["Asia"]; len(got) != 2 || got[1] != "yes" {
		t.Errorf("states = %v", got)
	}
	eng, err := back.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	post, err := eng.Query(Evidence{"XRay": 1}, "Lung")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Asia().ExactMarginal("Lung", Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post["Lung"][1]-want[1]) > 1e-9 {
		t.Errorf("BIF round trip changed inference: %v vs %v", post["Lung"], want)
	}
}

func TestParseBIFErrors(t *testing.T) {
	if _, _, err := ParseBIF(strings.NewReader("not bif at all {")); err == nil {
		t.Error("accepted garbage")
	}
}

func TestQuerySoft(t *testing.T) {
	n := Sprinkler()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One-hot soft evidence equals hard evidence.
	soft, err := eng.QuerySoft(nil, SoftEvidence{"WetGrass": {0, 1}}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	hard, err := eng.Query(Evidence{"WetGrass": 1}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(soft["Rain"][1]-hard["Rain"][1]) > 1e-9 {
		t.Errorf("one-hot soft %v vs hard %v", soft["Rain"], hard["Rain"])
	}
	// Uniform weights change nothing.
	flat, err := eng.QuerySoft(nil, SoftEvidence{"WetGrass": {1, 1}}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	prior, err := eng.Query(nil, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat["Rain"][1]-prior["Rain"][1]) > 1e-9 {
		t.Errorf("uniform soft evidence moved the posterior")
	}
	// A weak observation lands strictly between prior and hard posterior.
	weak, err := eng.QuerySoft(nil, SoftEvidence{"WetGrass": {0.5, 1}}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	if !(prior["Rain"][1] < weak["Rain"][1] && weak["Rain"][1] < hard["Rain"][1]) {
		t.Errorf("weak evidence %v not between prior %v and hard %v",
			weak["Rain"][1], prior["Rain"][1], hard["Rain"][1])
	}
	// Errors.
	if _, err := eng.QuerySoft(nil, SoftEvidence{"missing": {1, 1}}, "Rain"); err == nil {
		t.Error("accepted soft evidence on unknown variable")
	}
	if _, err := eng.QuerySoft(nil, SoftEvidence{"WetGrass": {1, 1}}, "missing"); err == nil {
		t.Error("accepted unknown query variable")
	}
}

func TestQueryOne(t *testing.T) {
	n := Asia()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.QueryOne(Evidence{"XRay": 1}, "Lung")
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.ExactMarginal("Lung", Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-want[1]) > 1e-9 {
		t.Errorf("QueryOne = %v, oracle %v", got, want)
	}
	if _, err := eng.QueryOne(nil, "missing"); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestQueryJoint(t *testing.T) {
	n := Asia()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	j, err := eng.QueryJoint(Evidence{"Smoke": 1}, "Asia", "XRay")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Vars) != 2 || len(j.P) != 4 {
		t.Fatalf("joint shape: %v %v", j.Vars, j.Card)
	}
	sum := 0.0
	for _, p := range j.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("joint sums to %v", sum)
	}
	// Marginalizing the joint must reproduce the single-variable query.
	post, err := eng.Query(Evidence{"Smoke": 1}, "XRay")
	if err != nil {
		t.Fatal(err)
	}
	// Find XRay's position in the joint.
	xpos := -1
	for i, v := range j.Vars {
		if v == "XRay" {
			xpos = i
		}
	}
	if xpos < 0 {
		t.Fatal("XRay not in joint vars")
	}
	marg := make([]float64, j.Card[xpos])
	for a := 0; a < j.Card[0]; a++ {
		for b := 0; b < j.Card[1]; b++ {
			s := []int{a, b}[xpos]
			marg[s] += j.At(a, b)
		}
	}
	for s := range marg {
		if math.Abs(marg[s]-post["XRay"][s]) > 1e-9 {
			t.Errorf("joint marginalizes to %v, query gives %v", marg, post["XRay"])
			break
		}
	}
	if _, err := eng.QueryJoint(nil, "missing"); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestDSeparatedPublic(t *testing.T) {
	n := Asia()
	sep, err := n.DSeparated([]string{"Asia"}, []string{"Smoke"}, nil)
	if err != nil || !sep {
		t.Errorf("Asia/Smoke: %v, %v", sep, err)
	}
	sep, err = n.DSeparated([]string{"Asia"}, []string{"Smoke"}, []string{"Dysp"})
	if err != nil || sep {
		t.Errorf("Asia/Smoke|Dysp: %v, %v", sep, err)
	}
	if _, err := n.DSeparated([]string{"missing"}, []string{"Smoke"}, nil); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestMarkovBlanketPublic(t *testing.T) {
	n := Asia()
	mb, err := n.MarkovBlanket("Lung")
	if err != nil {
		t.Fatal(err)
	}
	if len(mb) != 3 {
		t.Errorf("blanket = %v", mb)
	}
	if _, err := n.MarkovBlanket("missing"); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestAddNoisyOr(t *testing.T) {
	n := NewNetwork()
	n.MustAddVariable("C1", 2, nil, []float64{0.5, 0.5})
	n.MustAddVariable("C2", 2, nil, []float64{0.5, 0.5})
	if err := n.AddNoisyOr("E", []string{"C1", "C2"}, []float64{0.2, 0.4}, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := n.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// P(E=1 | C1=0, C2=0) = leak.
	p, err := eng.Query(Evidence{"C1": 0, "C2": 0}, "E")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p["E"][1]-0.05) > 1e-12 {
		t.Errorf("leak-only P = %v", p["E"][1])
	}
	// P(E=0 | C1=1, C2=1) = (1-leak)·q1·q2.
	p, err = eng.Query(Evidence{"C1": 1, "C2": 1}, "E")
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.95 * 0.2 * 0.4; math.Abs(p["E"][0]-want) > 1e-12 {
		t.Errorf("both-causes P(off) = %v, want %v", p["E"][0], want)
	}
	// P(E=0 | C1=1, C2=0) = (1-leak)·q1.
	p, err = eng.Query(Evidence{"C1": 1, "C2": 0}, "E")
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.95 * 0.2; math.Abs(p["E"][0]-want) > 1e-12 {
		t.Errorf("first-cause P(off) = %v, want %v", p["E"][0], want)
	}
}

func TestAddNoisyOrErrors(t *testing.T) {
	n := NewNetwork()
	n.MustAddVariable("C", 2, nil, []float64{0.5, 0.5})
	n.MustAddVariable("T", 3, nil, []float64{0.4, 0.3, 0.3})
	if err := n.AddNoisyOr("E", []string{"C"}, []float64{0.1, 0.2}, 0); err == nil {
		t.Error("accepted mismatched inhibitors")
	}
	if err := n.AddNoisyOr("E", []string{"C"}, []float64{1.5}, 0); err == nil {
		t.Error("accepted inhibitor > 1")
	}
	if err := n.AddNoisyOr("E", []string{"C"}, []float64{0.1}, -0.2); err == nil {
		t.Error("accepted negative leak")
	}
	if err := n.AddNoisyOr("E", []string{"T"}, []float64{0.1}, 0); err == nil {
		t.Error("accepted ternary parent")
	}
}

func TestSampleAndFit(t *testing.T) {
	n := Sprinkler()
	data, err := n.SampleN(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8000 || len(data[0]) != 4 {
		t.Fatalf("samples shaped %d × %d", len(data), len(data[0]))
	}
	fitted, err := n.FitParameters(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fitted.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Query(Evidence{"WetGrass": 1}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.ExactMarginal("Rain", Evidence{"WetGrass": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["Rain"][1]-want[1]) > 0.05 {
		t.Errorf("fitted P(Rain|Wet) = %v, true %v", got["Rain"][1], want[1])
	}
	// Missing variable in a sample errors.
	if _, err := n.FitParameters([]map[string]int{{"Rain": 0}}, 1); err == nil {
		t.Error("accepted incomplete sample")
	}
}

func TestXMLBIFPublicRoundTrip(t *testing.T) {
	n := Student()
	var buf bytes.Buffer
	if err := n.WriteXMLBIF(&buf, "student", nil); err != nil {
		t.Fatal(err)
	}
	back, _, err := ParseXMLBIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.ExactMarginal("Grade", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.ExactMarginal("Grade", nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want {
		if math.Abs(got[s]-want[s]) > 1e-12 {
			t.Errorf("XMLBIF round trip changed P(Grade): %v vs %v", got, want)
			break
		}
	}
	if _, _, err := ParseXMLBIF(strings.NewReader("not xml")); err == nil {
		t.Error("accepted garbage")
	}
}

func TestQueryApprox(t *testing.T) {
	n := Asia()
	exact, err := n.ExactMarginal("Lung", Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.QueryApprox(MethodLikelihoodWeighting, Evidence{"XRay": 1}, 40000, 3, "Lung")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["Lung"][1]-exact[1]) > 0.03 {
		t.Errorf("lw: P(Lung|XRay) = %.4f, exact %.4f", got["Lung"][1], exact[1])
	}
	// Gibbs needs a network without deterministic CPTs (Asia's OR gate
	// makes the chain non-ergodic); use the sprinkler network.
	sp := Sprinkler()
	spExact, err := sp.ExactMarginal("Rain", Evidence{"WetGrass": 1})
	if err != nil {
		t.Fatal(err)
	}
	gibbs, err := sp.QueryApprox(MethodGibbs, Evidence{"WetGrass": 1}, 40000, 3, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gibbs["Rain"][1]-spExact[1]) > 0.03 {
		t.Errorf("gibbs: P(Rain|Wet) = %.4f, exact %.4f", gibbs["Rain"][1], spExact[1])
	}
	if _, err := n.QueryApprox("bogus", nil, 10, 1, "Lung"); err == nil {
		t.Error("accepted bogus method")
	}
	if _, err := n.QueryApprox(MethodGibbs, nil, 10, 1, "missing"); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestMutualInformation(t *testing.T) {
	n := Asia()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// XRay is informative about TbOrCa; Asia is nearly uninformative about
	// Bronc.
	strong, err := eng.MutualInformation(nil, "TbOrCa", "XRay")
	if err != nil {
		t.Fatal(err)
	}
	weak, err := eng.MutualInformation(nil, "Bronc", "Asia")
	if err != nil {
		t.Fatal(err)
	}
	if strong <= weak {
		t.Errorf("MI(TbOrCa;XRay)=%v not above MI(Bronc;Asia)=%v", strong, weak)
	}
	if weak < 0 || weak > 1e-6 {
		t.Errorf("MI of independent pair = %v", weak)
	}
	// Symmetry.
	rev, err := eng.MutualInformation(nil, "XRay", "TbOrCa")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(strong-rev) > 1e-9 {
		t.Errorf("MI not symmetric: %v vs %v", strong, rev)
	}
	if _, err := eng.MutualInformation(nil, "XRay", "XRay"); err == nil {
		t.Error("accepted self MI")
	}
	if _, err := eng.MutualInformation(nil, "missing", "XRay"); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestBestObservation(t *testing.T) {
	n := Asia()
	eng, err := n.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// For diagnosing TbOrCa, the X-ray must rank above the travel history.
	names, mis, err := eng.BestObservation(nil, "TbOrCa", "XRay", "Asia", "Dysp")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || len(mis) != 3 {
		t.Fatalf("ranked %d candidates", len(names))
	}
	if names[0] != "XRay" {
		t.Errorf("best observation = %s (%v), want XRay", names[0], mis)
	}
	for i := 1; i < len(mis); i++ {
		if mis[i] > mis[i-1]+1e-12 {
			t.Errorf("ranking not sorted: %v", mis)
		}
	}
	// Already-observed candidates and the target itself are skipped.
	names, _, err = eng.BestObservation(Evidence{"XRay": 1}, "TbOrCa", "XRay", "TbOrCa", "Dysp")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "Dysp" {
		t.Errorf("filtered ranking = %v", names)
	}
}

func TestLearnChowLiu(t *testing.T) {
	// Sample a tree-shaped truth, learn back, check posterior agreement.
	truth := NewNetwork()
	truth.MustAddVariable("Root", 2, nil, []float64{0.5, 0.5})
	truth.MustAddVariable("Mid", 2, []string{"Root"}, []float64{0.9, 0.1, 0.2, 0.8})
	truth.MustAddVariable("Leaf", 2, []string{"Mid"}, []float64{0.85, 0.15, 0.1, 0.9})
	data, err := truth.SampleN(15000, 13)
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]int{"Root": 2, "Mid": 2, "Leaf": 2}
	learned, err := LearnChowLiu(data, states, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := learned.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Query(Evidence{"Leaf": 1}, "Root")
	if err != nil {
		t.Fatal(err)
	}
	want, err := truth.ExactMarginal("Root", Evidence{"Leaf": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["Root"][1]-want[1]) > 0.04 {
		t.Errorf("learned P(Root|Leaf) = %.4f, true %.4f", got["Root"][1], want[1])
	}
	if _, err := LearnChowLiu([]map[string]int{{"Root": 0}}, states, 1); err == nil {
		t.Error("accepted incomplete sample")
	}
}
