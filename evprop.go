// Package evprop is a parallel exact-inference library for discrete
// Bayesian networks, reproducing Xia, Feng & Prasanna, "Parallel Evidence
// Propagation on Multicore Processors" (PACT 2009).
//
// A Bayesian network is compiled into a junction tree
// (Lauritzen–Spiegelhalter), the tree is rerooted to minimize the parallel
// critical path (the paper's Algorithm 1), evidence propagation is
// decomposed into a DAG of node-level primitives, and a collaborative
// work-sharing scheduler executes the DAG on P goroutines with dynamic
// partitioning of large potential-table operations.
//
// Quick start:
//
//	net := evprop.NewNetwork()
//	net.AddVariable("Rain", 2, nil, []float64{0.8, 0.2})
//	net.AddVariable("Wet", 2, []string{"Rain"}, []float64{
//		0.9, 0.1, // Rain = 0
//		0.2, 0.8, // Rain = 1
//	})
//	eng, _ := net.Compile(evprop.Options{})
//	post, _ := eng.Query(evprop.Evidence{"Wet": 1}, "Rain")
//	fmt.Println(post["Rain"]) // posterior distribution of Rain
package evprop

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"evprop/internal/approx"
	"evprop/internal/bayesnet"
	"evprop/internal/bif"
	"evprop/internal/core"
	"evprop/internal/obs"
	"evprop/internal/potential"
)

// Evidence maps observed variable names to their observed state indices.
type Evidence map[string]int

// Network is a discrete Bayesian network under construction.
type Network struct {
	inner *bayesnet.Network
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{inner: bayesnet.New()} }

// AddVariable appends a random variable with the given number of states.
// parents names previously added variables; cpt is the flattened
// conditional probability table with the parents' states (in the order
// given) as the slow indices and this variable's own state as the fastest
// index. Each conditional row must sum to 1.
func (n *Network) AddVariable(name string, states int, parents []string, cpt []float64) error {
	ids := make([]int, len(parents))
	for i, p := range parents {
		id := n.inner.ID(p)
		if id < 0 {
			return fmt.Errorf("%w: parent %q of %q", ErrUnknownVariable, p, name)
		}
		ids[i] = id
	}
	_, err := n.inner.AddNode(name, states, ids, cpt)
	return err
}

// MustAddVariable is AddVariable panicking on error, for example programs
// with literal networks.
func (n *Network) MustAddVariable(name string, states int, parents []string, cpt []float64) {
	if err := n.AddVariable(name, states, parents, cpt); err != nil {
		panic(err)
	}
}

// Variables returns the variable names in insertion order.
func (n *Network) Variables() []string {
	out := make([]string, n.inner.N())
	for i := range out {
		out[i] = n.inner.Name(i)
	}
	return out
}

// States returns the number of states of the named variable, or 0 if it
// does not exist.
func (n *Network) States(name string) int {
	id := n.inner.ID(name)
	if id < 0 {
		return 0
	}
	return n.inner.Nodes[id].Card
}

// Validate checks that the network is a well-formed DAG with normalized
// CPTs.
func (n *Network) Validate() error { return n.inner.Validate() }

// ExactMarginal computes P(name | ev) by brute-force joint enumeration. It
// is exponential in the network size and exists as a reference oracle for
// small networks.
func (n *Network) ExactMarginal(name string, ev Evidence) ([]float64, error) {
	id := n.inner.ID(name)
	if id < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	iev, err := n.evidence(ev)
	if err != nil {
		return nil, err
	}
	m, err := n.inner.ExactMarginal(id, iev)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), m.Data...), nil
}

func (n *Network) evidence(ev Evidence) (potential.Evidence, error) {
	iev := potential.Evidence{}
	for name, state := range ev {
		id := n.inner.ID(name)
		if id < 0 {
			return nil, fmt.Errorf("%w: evidence on %q", ErrUnknownVariable, name)
		}
		if card := n.inner.Nodes[id].Card; state < 0 || state >= card {
			return nil, fmt.Errorf("%w: %q has %d states, got state %d", ErrBadState, name, card, state)
		}
		iev[id] = state
	}
	return iev, nil
}

func (n *Network) likelihood(soft SoftEvidence) (potential.Likelihood, error) {
	like := potential.Likelihood{}
	for name, weights := range soft {
		id := n.inner.ID(name)
		if id < 0 {
			return nil, fmt.Errorf("%w: soft evidence on %q", ErrUnknownVariable, name)
		}
		if len(weights) != n.inner.Nodes[id].Card {
			return nil, fmt.Errorf("%w: soft evidence on %q has %d weights for %d states",
				ErrBadState, name, len(weights), n.inner.Nodes[id].Card)
		}
		like[id] = append([]float64(nil), weights...)
	}
	return like, nil
}

// Scheduler names accepted by Options.Scheduler.
const (
	SchedulerCollaborative = "collaborative"
	SchedulerSerial        = "serial"
	SchedulerLevelSync     = "levelsync"
	SchedulerDataParallel  = "dataparallel"
	SchedulerCentralized   = "centralized"
	SchedulerWorkStealing  = "stealing"
)

// Options configures compilation of a network into an inference engine.
type Options struct {
	// Workers is the number of propagation goroutines (0 = GOMAXPROCS).
	Workers int
	// Scheduler is one of the Scheduler* constants (default
	// "collaborative").
	Scheduler string
	// Reroot applies the paper's Algorithm 1 to minimize the parallel
	// critical path (default true; set DisableReroot to turn off).
	DisableReroot bool
	// PartitionThreshold is δ: potential-table operations over more
	// entries than this are split across workers. 0 selects an automatic
	// threshold; negative disables partitioning.
	PartitionThreshold int
	// DisableFlightRecorder turns off the always-on flight recorder (see
	// Engine.RecentQueries); useful only for micro-benchmarking its cost.
	DisableFlightRecorder bool
	// FlightRecorderSize is the recorder's summary-ring capacity (0 selects
	// the default, 256).
	FlightRecorderSize int
	// SlowQueryThreshold pins the flight recorder's slow-query capture
	// threshold: any propagation slower than this retains its full
	// scheduler trace. 0 selects the adaptive threshold, 2× the observed
	// p99 latency once enough propagations have been recorded.
	SlowQueryThreshold time.Duration
	// CacheSize enables the shared-evidence result cache: completed
	// propagations are retained in a sharded LRU of this many entries,
	// keyed by the canonical signature of (semiring, hard evidence, soft
	// evidence), and concurrent queries with identical evidence collapse
	// into a single propagation. 0 (the default) disables caching. The
	// cache invalidates itself when the source network gains variables
	// after compilation; see Engine.InvalidateCache for manual control.
	CacheSize int
	// PprofLabels tags the scheduler workers with pprof goroutine labels
	// (query_id, task_kind) while they execute each query, so CPU profiles
	// segment by query and by primitive (go tool pprof -tagfocus
	// query_id=...). Off by default: the labels cost a few percent of
	// propagation throughput and are observable only through the pprof
	// endpoints, so enable this alongside them (evserve does when run with
	// -pprof).
	PprofLabels bool
	// RecordEvidence retains each query's full evidence map in its flight
	// record — in addition to the canonical evidence signature, which is
	// always recorded — so recorded queries can be re-executed verbatim
	// (durable audit replay; evserve enables this when run with
	// -audit-dir). Off by default: the evidence map is the one
	// flight-record field whose size the client controls.
	RecordEvidence bool
	// Lazy switches the engine to zero-aware lazy propagation: the
	// junction tree is calibrated once at compile time, each query then
	// propagates only through the part of the tree its evidence actually
	// disturbs (messages from undisturbed subtrees are skipped, messages
	// across fully observed separators collapse to scalars, and table
	// operations shrink to the non-zero block hard evidence leaves
	// behind), and root-to-leaf distribution runs on demand per posterior
	// read. Posteriors, P(e) and MPE agree with the eager engine to
	// floating-point tolerance; QueryResult.PropagationStats exposes how
	// much work was pruned. Off by default.
	Lazy bool
}

// Engine answers posterior queries over a compiled network. An Engine is
// safe for fully concurrent use: any number of goroutines may call
// Propagate (and every Query* convenience wrapper) simultaneously with no
// external locking. Propagation state is pooled and recycled across calls,
// and a persistent worker pool executes the task graphs, so steady-state
// queries allocate little and spawn no goroutines.
type Engine struct {
	net   *Network
	inner *core.Engine
	// modelVersion is the source network's mutation counter captured at
	// compile time (and advanced on cache invalidation). A query that
	// observes a newer network version purges the result cache first, so
	// results computed against the old structure are never served after
	// the model moves on.
	modelVersion atomic.Int64
}

// Close releases the engine's persistent worker pool. It is optional —
// engines are finalized on garbage collection — and idempotent; an engine
// keeps answering queries after Close, falling back to transient workers.
func (e *Engine) Close() {
	if e == nil || e.inner == nil {
		return
	}
	e.inner.Close()
}

// EngineStats is a snapshot of an engine's lifetime counters and
// configuration.
type EngineStats struct {
	// Propagations counts completed scheduler invocations: full two-pass
	// propagations (sum- and max-product) and collect-only runs.
	Propagations int64
	// Workers is the configured number of propagation goroutines.
	Workers int
	// Scheduler is the configured scheduler name.
	Scheduler string
}

// Stats returns the engine's lifetime counters and configuration.
func (e *Engine) Stats() EngineStats {
	if e == nil || e.inner == nil {
		return EngineStats{}
	}
	opts := e.inner.Options()
	return EngineStats{
		Propagations: e.inner.Propagations(),
		Workers:      opts.Workers,
		Scheduler:    opts.Scheduler.String(),
	}
}

// CacheStats is a snapshot of the engine's shared-evidence result cache.
type CacheStats struct {
	// Enabled is false when the engine was compiled with CacheSize 0.
	Enabled bool `json:"enabled"`
	// Capacity and Entries are the cache's configured size and current fill.
	Capacity int `json:"capacity"`
	Entries  int `json:"entries"`
	// Hits and Misses count cache lookups over the engine's lifetime.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Collapsed counts queries served by another caller's in-flight
	// propagation: concurrent identical queries trigger one propagation,
	// and the other callers land here.
	Collapsed int64 `json:"collapsed"`
}

// CacheStats returns the result cache's counters (the zero value when the
// engine was compiled without a cache).
func (e *Engine) CacheStats() CacheStats {
	if e == nil || e.inner == nil {
		return CacheStats{}
	}
	s := e.inner.CacheStats()
	return CacheStats{
		Enabled:   s.Enabled,
		Capacity:  s.Capacity,
		Entries:   s.Entries,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Collapsed: s.Collapsed,
	}
}

// InvalidateCache drops every cached result. Queries in flight when it is
// called can never re-populate the cache with pre-invalidation results, so
// once InvalidateCache returns, no later query is served a stale posterior.
// Results already handed out stay valid — they are immutable. Structural
// mutation of the source network (AddVariable after Compile) invalidates
// automatically; call this only for out-of-band staleness the engine cannot
// see.
func (e *Engine) InvalidateCache() {
	if e == nil || e.inner == nil {
		return
	}
	e.inner.InvalidateCache()
}

// EvidenceSignature returns the canonical cache key of an evidence
// configuration: a deterministic encoding of the (hard, soft) evidence that
// is identical for semantically equal evidence regardless of map iteration
// or insertion order, and distinct for any differing configuration. Two
// sum-product queries share a cache entry (and collapse into one
// propagation) exactly when their signatures are equal. Servers use it to
// coalesce same-evidence requests before they reach the engine.
func (e *Engine) EvidenceSignature(ev Evidence, soft SoftEvidence) (string, error) {
	if e == nil || e.inner == nil || e.net == nil {
		return "", ErrUncompiled
	}
	iev, err := e.net.evidence(ev)
	if err != nil {
		return "", err
	}
	var like potential.Likelihood
	if len(soft) > 0 {
		like, err = e.net.likelihood(soft)
		if err != nil {
			return "", err
		}
	}
	return e.inner.EvidenceSignature(iev, like), nil
}

// SchedulerReport aggregates the engine's scheduler observability across
// all completed runs: lifetime busy/overhead totals, item counters, a
// per-primitive-kind time breakdown, and the most recent run's Fig. 8
// gauges. Engines running the serial or baseline schedulers report zeros.
type SchedulerReport struct {
	// Runs counts scheduler runs that reported metrics.
	Runs int64
	// Busy and Overhead are lifetime totals across all runs and workers.
	Busy, Overhead time.Duration
	// OverheadFraction is the lifetime scheduling fraction of total worker
	// time; LastOverheadFraction and LastLoadBalance are the most recent
	// run's Fig. 8 gauges.
	OverheadFraction     float64
	LastOverheadFraction float64
	LastLoadBalance      float64
	// LastElapsed and LastWorkers describe the most recent run.
	LastElapsed time.Duration
	LastWorkers int
	// Tasks, Pieces, Partitioned and Steals are lifetime item counters.
	Tasks, Pieces, Partitioned, Steals int64
	// BusyByKind splits lifetime computation time across the four
	// node-level primitives.
	BusyByKind map[string]time.Duration
}

// SchedulerReport returns the engine's aggregated observability report.
func (e *Engine) SchedulerReport() SchedulerReport {
	if e == nil || e.inner == nil {
		return SchedulerReport{LastLoadBalance: 1}
	}
	s := e.inner.ObsSnapshot()
	r := SchedulerReport{
		Runs:                 s.Runs,
		Busy:                 s.Busy,
		Overhead:             s.Overhead,
		OverheadFraction:     s.OverheadFraction(),
		LastOverheadFraction: s.LastOverheadFraction,
		LastLoadBalance:      s.LastLoadBalance,
		LastElapsed:          s.LastElapsed,
		LastWorkers:          s.LastWorkers,
		Tasks:                s.Tasks,
		Pieces:               s.Pieces,
		Partitioned:          s.Partitioned,
		Steals:               s.Steals,
		BusyByKind:           make(map[string]time.Duration, len(obs.KindNames)),
	}
	for k, name := range obs.KindNames {
		r.BusyByKind[name] = s.KindBusy[k]
	}
	return r
}

// WriteSchedulerMetrics writes the engine's aggregated scheduler
// observability in Prometheus text exposition format under the given
// metric prefix (e.g. "evprop_sched") — the engine half of an HTTP
// /metrics endpoint.
func (e *Engine) WriteSchedulerMetrics(w io.Writer, prefix string) {
	if e == nil || e.inner == nil {
		return
	}
	e.inner.ObsSnapshot().WritePrometheus(w, prefix)
}

// WorkerGauges is one scheduler worker's live gauges at a sampling instant:
// its current state, the depth and weight counter of its local ready list,
// and its lifetime execution/steal/partition counters.
type WorkerGauges struct {
	// State is "executing", "fetching", "stealing", "parked" or "idle".
	State string `json:"state"`
	// QueueDepth and QueueWeight describe the worker's local ready list:
	// queued item count and the paper's W_i weight counter.
	QueueDepth  int64 `json:"queue_depth"`
	QueueWeight int64 `json:"queue_weight"`
	// BusyNs is cumulative nanoseconds inside node-level primitives; the
	// delta between two snapshots over the wall time between them is the
	// worker's live utilization.
	BusyNs int64 `json:"busy_ns"`
	// Items counts executed items (tasks, pieces, combiners); Completed
	// counts original graph tasks this worker retired.
	Items     int64 `json:"items"`
	Completed int64 `json:"completed"`
	// StealAttempts and Steals are the work-stealing scheduler's counters
	// (zero under the collaborative pool).
	StealAttempts int64 `json:"steal_attempts"`
	Steals        int64 `json:"steals"`
	// Partitions counts tasks this worker split into δ-pieces.
	Partitions int64 `json:"partitions"`
}

// SchedulerGauges is a live snapshot of the scheduler: the global task-list
// depth, in-flight propagation count, and per-worker gauges. Reading it is
// wait-free for the workers, so it is safe to sample at high frequency
// while queries run.
type SchedulerGauges struct {
	// GlobalDepth counts tasks submitted to the scheduler but not yet
	// completed, across all in-flight propagations.
	GlobalDepth int64 `json:"global_depth"`
	// ActiveRuns counts propagations currently in flight.
	ActiveRuns int64 `json:"active_runs"`
	// Workers has one entry per scheduler worker. Empty for engines on the
	// serial or baseline schedulers, which expose no gauge surface.
	Workers []WorkerGauges `json:"workers"`
}

// SchedulerGauges snapshots the engine's live scheduler gauge surface.
func (e *Engine) SchedulerGauges() SchedulerGauges {
	if e == nil || e.inner == nil {
		return SchedulerGauges{}
	}
	s := e.inner.Gauges()
	g := SchedulerGauges{
		GlobalDepth: s.GlobalDepth,
		ActiveRuns:  s.ActiveRuns,
		Workers:     make([]WorkerGauges, len(s.Workers)),
	}
	for i, w := range s.Workers {
		g.Workers[i] = WorkerGauges{
			State:         w.StateName,
			QueueDepth:    w.QueueDepth,
			QueueWeight:   w.QueueWeight,
			BusyNs:        w.BusyNs,
			Items:         w.Items,
			Completed:     w.Completed,
			StealAttempts: w.StealAttempts,
			Steals:        w.Steals,
			Partitions:    w.Partitions,
		}
	}
	return g
}

// Compile converts the network into a junction tree and prepares the
// propagation engine.
func (n *Network) Compile(opts Options) (*Engine, error) {
	if err := n.inner.Validate(); err != nil {
		return nil, err
	}
	tree, err := n.inner.Compile()
	if err != nil {
		return nil, err
	}
	name := opts.Scheduler
	if name == "" {
		name = SchedulerCollaborative
	}
	s, err := core.ParseScheduler(name)
	if err != nil {
		return nil, err
	}
	threshold := opts.PartitionThreshold
	switch {
	case threshold < 0:
		threshold = 0 // disabled
	case threshold == 0:
		// Automatic δ: twice the mean clique table size, so only the
		// heavyweight operations split — rounded up to a whole cache line
		// of entries (64 bytes), matching the minimum piece granularity
		// the schedulers snap to.
		total := 0
		for i := range tree.Cliques {
			total += tree.Cliques[i].TableSize()
		}
		threshold = 2 * total / tree.N()
		threshold = (threshold + 7) / 8 * 8
	}
	var recorder *obs.FlightRecorder
	if !opts.DisableFlightRecorder {
		recorder = obs.NewFlightRecorder(opts.FlightRecorderSize, opts.SlowQueryThreshold)
	}
	eng, err := core.NewEngine(tree, core.Options{
		Workers:            opts.Workers,
		Scheduler:          s,
		Reroot:             !opts.DisableReroot,
		PartitionThreshold: threshold,
		Recorder:           recorder,
		CacheSize:          opts.CacheSize,
		PprofLabels:        opts.PprofLabels,
		RecordEvidence:     opts.RecordEvidence,
		Lazy:               opts.Lazy,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{net: n, inner: eng}
	e.modelVersion.Store(n.inner.Version())
	return e, nil
}

// Query runs one evidence propagation and returns the posterior
// distribution of each requested variable given the evidence. It is a
// convenience wrapper over Propagate; hold the *QueryResult instead when
// several quantities are needed from the same evidence.
func (e *Engine) Query(ev Evidence, vars ...string) (map[string][]float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	if len(vars) == 0 {
		return map[string][]float64{}, nil
	}
	return res.Posteriors(vars...)
}

// SoftEvidence maps variable names to per-state likelihood weights (soft
// or "virtual" evidence): instead of fixing a state, observation noise
// scales each state's probability. Weights need not sum to 1; a one-hot
// vector reproduces hard evidence.
type SoftEvidence map[string][]float64

// QuerySoft runs one propagation with both hard and soft evidence and
// returns posteriors for the requested variables. It is a convenience
// wrapper over PropagateSoft.
func (e *Engine) QuerySoft(ev Evidence, soft SoftEvidence, vars ...string) (map[string][]float64, error) {
	res, err := e.PropagateSoft(ev, soft)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	if len(vars) == 0 {
		return map[string][]float64{}, nil
	}
	return res.Posteriors(vars...)
}

// QueryAll returns the posterior of every non-evidence variable from one
// propagation. It is a convenience wrapper over Propagate + Posteriors.
func (e *Engine) QueryAll(ev Evidence) (map[string][]float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	return res.Posteriors()
}

// QueryOne answers a single-variable query using a collection-only
// propagation toward the clique containing the variable — roughly half the
// work of a full Query, useful when only one posterior is needed.
func (e *Engine) QueryOne(ev Evidence, name string) ([]float64, error) {
	if e == nil || e.inner == nil || e.net == nil {
		return nil, ErrUncompiled
	}
	id := e.net.inner.ID(name)
	if id < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	iev, err := e.net.evidence(ev)
	if err != nil {
		return nil, err
	}
	m, err := e.inner.CollectMarginal(iev, id)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), m.Data...), nil
}

// Joint is a posterior distribution over several variables. Vars lists the
// variable names in the table's dimension order (ascending internal id) and
// Card their state counts; P is row-major with the last variable fastest.
type Joint struct {
	Vars []string
	Card []int
	P    []float64
}

// At returns the probability of one joint state (parallel to Vars).
func (j *Joint) At(states ...int) float64 {
	idx := 0
	for i, s := range states {
		idx = idx*j.Card[i] + s
	}
	return j.P[idx]
}

// QueryJoint computes the posterior over an arbitrary set of variables,
// even when they do not share a clique (the engine folds the minimal
// subtree of calibrated cliques spanning them). Cost grows exponentially
// with the number of requested variables.
func (e *Engine) QueryJoint(ev Evidence, vars ...string) (*Joint, error) {
	if e == nil || e.inner == nil || e.net == nil {
		return nil, ErrUncompiled
	}
	if _, err := e.net.names(vars); err != nil {
		return nil, err // fail before propagating on unknown names
	}
	res, err := e.Propagate(ev)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	return res.Joint(vars...)
}

// MutualInformation returns I(x; y | evidence) in bits: how much observing
// one variable is expected to tell us about the other, given what is
// already known. It is the value-of-information measure behind
// BestObservation.
func (e *Engine) MutualInformation(ev Evidence, x, y string) (float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return 0, err
	}
	defer res.Close()
	return res.MutualInformation(x, y)
}

// BestObservation ranks candidate variables by how informative observing
// each would be about the target, given the current evidence — the classic
// "which test should we run next" query. It returns the candidates sorted
// by decreasing mutual information with the target. All candidates are
// scored against one shared propagation.
func (e *Engine) BestObservation(ev Evidence, target string, candidates ...string) ([]string, []float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return nil, nil, err
	}
	defer res.Close()
	type scored struct {
		name string
		mi   float64
	}
	ranked := make([]scored, 0, len(candidates))
	for _, c := range candidates {
		if _, observed := ev[c]; observed || c == target {
			continue
		}
		mi, err := res.MutualInformation(target, c)
		if err != nil {
			return nil, nil, err
		}
		ranked = append(ranked, scored{c, mi})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].mi > ranked[j].mi })
	names := make([]string, len(ranked))
	mis := make([]float64, len(ranked))
	for i, r := range ranked {
		names[i] = r.name
		mis[i] = r.mi
	}
	return names, mis, nil
}

// ProbabilityOfEvidence returns P(e), the likelihood of the observation.
// It is a convenience wrapper over Propagate.
func (e *Engine) ProbabilityOfEvidence(ev Evidence) (float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return 0, err
	}
	res.Close()
	return res.ProbabilityOfEvidence(), nil
}

// MostProbableState returns the argmax state and its posterior probability
// for the named variable given the evidence.
func (e *Engine) MostProbableState(ev Evidence, name string) (int, float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return 0, 0, err
	}
	defer res.Close()
	dist, err := res.Posterior(name)
	if err != nil {
		return 0, 0, err
	}
	best, bestP := 0, dist[0]
	for s, p := range dist {
		if p > bestP {
			best, bestP = s, p
		}
	}
	return best, bestP, nil
}

// MostProbableExplanation computes the jointly most probable assignment of
// all variables given the evidence (MPE / Viterbi decoding), via
// max-product evidence propagation over the same task graph and scheduler.
// It returns the assignment by variable name and its conditional
// probability P(assignment | evidence). It is a convenience wrapper over
// Propagate + MPE.
func (e *Engine) MostProbableExplanation(ev Evidence) (map[string]int, float64, error) {
	res, err := e.Propagate(ev)
	if err != nil {
		return nil, 0, err
	}
	defer res.Close()
	return res.MPE()
}

// Cliques reports the compiled junction tree's size (number of cliques and
// the largest clique width), useful for judging tractability.
func (e *Engine) Cliques() (n, maxWidth int) {
	t := e.inner.Tree()
	for i := range t.Cliques {
		if w := t.Cliques[i].Width(); w > maxWidth {
			maxWidth = w
		}
	}
	return t.N(), maxWidth
}

// RandomNetwork generates a synthetic layered Bayesian network with the
// given node count, states per node and maximum parents per node — the
// workload generator used by the scheduling examples and benchmarks.
func RandomNetwork(nodes, states, maxParents int, seed int64) *Network {
	return &Network{inner: bayesnet.RandomNetwork(nodes, states, maxParents, seed)}
}

// names resolves variable names to internal ids.
func (n *Network) names(vars []string) ([]int, error) {
	out := make([]int, len(vars))
	for i, name := range vars {
		id := n.inner.ID(name)
		if id < 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
		}
		out[i] = id
	}
	return out, nil
}

// Approximate-inference method names for QueryApprox.
const (
	// MethodLikelihoodWeighting clamps evidence while forward-sampling and
	// weights each draw by the evidence likelihood.
	MethodLikelihoodWeighting = "lw"
	// MethodGibbs runs single-site Gibbs sampling over the non-evidence
	// variables (with a burn-in of one tenth of the samples).
	MethodGibbs = "gibbs"
)

// QueryApprox estimates posteriors by sampling instead of exact
// propagation — useful for sanity checks and for networks whose junction
// trees are intractably wide. Estimates converge to the exact posteriors
// as samples grows.
func (n *Network) QueryApprox(method string, ev Evidence, samples int, seed int64, vars ...string) (map[string][]float64, error) {
	iev, err := n.evidence(ev)
	if err != nil {
		return nil, err
	}
	ids, err := n.names(vars)
	if err != nil {
		return nil, err
	}
	var est map[int][]float64
	switch method {
	case MethodLikelihoodWeighting:
		est, err = approx.LikelihoodWeighting(n.inner, iev, ids, approx.Options{Samples: samples, Seed: seed})
	case MethodGibbs:
		est, err = approx.Gibbs(n.inner, iev, ids, approx.Options{Samples: samples, BurnIn: samples / 10, Seed: seed})
	default:
		return nil, fmt.Errorf("evprop: unknown approximation method %q", method)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(vars))
	for i, name := range vars {
		out[name] = est[ids[i]]
	}
	return out, nil
}

// SampleN draws complete assignments by ancestral (forward) sampling,
// returned as name→state maps. The seed makes runs reproducible.
func (n *Network) SampleN(count int, seed int64) ([]map[string]int, error) {
	rng := rand.New(rand.NewSource(seed))
	raw, err := n.inner.SampleN(rng, count)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]int, len(raw))
	for i, sample := range raw {
		m := make(map[string]int, len(sample))
		for id, state := range sample {
			m[n.inner.Name(id)] = state
		}
		out[i] = m
	}
	return out, nil
}

// FitParameters learns a new network with this network's structure from
// complete data (name→state maps), using Laplace smoothing. It is the
// sample → learn → infer loop: parameters fitted to enough samples of a
// network converge to that network.
func (n *Network) FitParameters(data []map[string]int, smoothing float64) (*Network, error) {
	raw := make([][]int, len(data))
	for i, sample := range data {
		row := make([]int, n.inner.N())
		for id := range row {
			state, ok := sample[n.inner.Name(id)]
			if !ok {
				return nil, fmt.Errorf("evprop: sample %d missing variable %q", i, n.inner.Name(id))
			}
			row[id] = state
		}
		raw[i] = row
	}
	inner, err := bayesnet.LearnParameters(n.inner.StructureOf(), raw, smoothing)
	if err != nil {
		return nil, err
	}
	return &Network{inner: inner}, nil
}

// LearnChowLiu learns the maximum-likelihood tree-structured network from
// complete samples (Chow & Liu): pairwise mutual informations are estimated
// from the data, a maximum spanning tree connects the variables, and CPTs
// are fitted with Laplace smoothing. states gives each variable's state
// count; every sample must assign all variables.
func LearnChowLiu(data []map[string]int, states map[string]int, smoothing float64) (*Network, error) {
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	cards := make([]int, len(names))
	for i, name := range names {
		cards[i] = states[name]
	}
	raw := make([][]int, len(data))
	for i, sample := range data {
		row := make([]int, len(names))
		for j, name := range names {
			st, ok := sample[name]
			if !ok {
				return nil, fmt.Errorf("evprop: sample %d missing variable %q", i, name)
			}
			row[j] = st
		}
		raw[i] = row
	}
	inner, err := bayesnet.ChowLiu(names, cards, raw, 0, smoothing)
	if err != nil {
		return nil, err
	}
	return &Network{inner: inner}, nil
}

// DSeparated reports whether the variable sets x and y are d-separated
// given z: if true, x and y are conditionally independent given z for
// every parameterization of the network, and a query can skip inference.
func (n *Network) DSeparated(x, y, z []string) (bool, error) {
	xi, err := n.names(x)
	if err != nil {
		return false, err
	}
	yi, err := n.names(y)
	if err != nil {
		return false, err
	}
	zi, err := n.names(z)
	if err != nil {
		return false, err
	}
	return n.inner.DSeparated(xi, yi, zi)
}

// MarkovBlanket returns the names of the variable's Markov blanket — its
// parents, children and co-parents, the minimal set that shields it from
// the rest of the network.
func (n *Network) MarkovBlanket(name string) ([]string, error) {
	id := n.inner.ID(name)
	if id < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	mb, err := n.inner.MarkovBlanket(id)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(mb))
	for i, v := range mb {
		out[i] = n.inner.Name(v)
	}
	return out, nil
}

// AddNoisyOr appends a binary variable whose CPT follows the canonical
// noisy-OR model: the variable fires if any parent "cause" fires and is not
// inhibited; inhibit[i] is the probability that parent i's influence is
// suppressed, and leak is the probability the variable fires with no parent
// active. All parents must be binary.
func (n *Network) AddNoisyOr(name string, parents []string, inhibit []float64, leak float64) error {
	if len(inhibit) != len(parents) {
		return fmt.Errorf("evprop: noisy-or %q: %d parents but %d inhibitors", name, len(parents), len(inhibit))
	}
	if leak < 0 || leak > 1 {
		return fmt.Errorf("evprop: noisy-or %q: leak %v out of [0,1]", name, leak)
	}
	for i, q := range inhibit {
		if q < 0 || q > 1 {
			return fmt.Errorf("evprop: noisy-or %q: inhibitor %d = %v out of [0,1]", name, i, q)
		}
	}
	for _, p := range parents {
		if n.States(p) != 2 {
			return fmt.Errorf("evprop: noisy-or %q: parent %q is not binary", name, p)
		}
	}
	rows := 1 << len(parents)
	cpt := make([]float64, 0, rows*2)
	for r := 0; r < rows; r++ {
		pOff := 1 - leak
		for i := range parents {
			// Parent i is active when its bit (first parent slowest) is 1.
			if r>>(len(parents)-1-i)&1 == 1 {
				pOff *= inhibit[i]
			}
		}
		cpt = append(cpt, pOff, 1-pOff)
	}
	return n.AddVariable(name, 2, parents, cpt)
}

// ParseBIF reads a Bayesian network in the textual Bayesian Interchange
// Format (the format of the classic repository files such as asia.bif). It
// returns the network and each variable's declared state names, which map
// state indices (used in Evidence and posteriors) to their labels.
func ParseBIF(r io.Reader) (*Network, map[string][]string, error) {
	doc, err := bif.Parse(r)
	if err != nil {
		return nil, nil, err
	}
	inner, states, err := doc.ToNetwork()
	if err != nil {
		return nil, nil, err
	}
	return &Network{inner: inner}, states, nil
}

// WriteBIF serializes the network in BIF text form. states optionally
// labels each variable's states; omitted variables get synthetic labels.
func (n *Network) WriteBIF(w io.Writer, name string, states map[string][]string) error {
	return bif.Write(w, n.inner, name, states)
}

// ParseXMLBIF reads a network in XMLBIF 0.3 form (the XML interchange of
// WEKA and SamIam), returning the network and per-variable state names.
func ParseXMLBIF(r io.Reader) (*Network, map[string][]string, error) {
	inner, states, err := bif.ParseXMLNetwork(r)
	if err != nil {
		return nil, nil, err
	}
	return &Network{inner: inner}, states, nil
}

// WriteXMLBIF serializes the network as XMLBIF 0.3.
func (n *Network) WriteXMLBIF(w io.Writer, name string, states map[string][]string) error {
	return bif.WriteXML(w, n.inner, name, states)
}

// Asia returns the classic Lauritzen–Spiegelhalter chest-clinic network.
func Asia() *Network {
	n, _ := bayesnet.Asia()
	return &Network{inner: n}
}

// Sprinkler returns Murphy's four-node lawn network.
func Sprinkler() *Network {
	n, _ := bayesnet.Sprinkler()
	return &Network{inner: n}
}

// Student returns the five-node student network of Koller & Friedman.
func Student() *Network {
	n, _ := bayesnet.Student()
	return &Network{inner: n}
}
