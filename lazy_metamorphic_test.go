package evprop

import (
	"fmt"
	"math"
	"testing"
)

// Metamorphic properties of the lazy engine's pruning, stated over the work
// counters rather than the answers: observing a d-separating variable must
// strictly *reduce* the messages, tasks and flops of an otherwise identical
// query, and grafting barren (unobserved, unqueried) branches onto the
// network must change neither the answers nor the number of table entries
// the query materializes.

// chainNet builds the Markov chain X0 → X1 → … → X{n-1} with fixed CPTs,
// optionally with a barren pendant leaf L_i hanging off every interior X_i.
func chainNet(t *testing.T, n int, withLeaves bool) *Network {
	t.Helper()
	net := NewNetwork()
	net.MustAddVariable("X0", 2, nil, []float64{0.6, 0.4})
	for i := 1; i < n; i++ {
		net.MustAddVariable(fmt.Sprintf("X%d", i), 2,
			[]string{fmt.Sprintf("X%d", i-1)}, []float64{0.7, 0.3, 0.2, 0.8})
	}
	if withLeaves {
		for i := 1; i < n-1; i++ {
			net.MustAddVariable(fmt.Sprintf("L%d", i), 2,
				[]string{fmt.Sprintf("X%d", i)}, []float64{0.5, 0.5, 0.9, 0.1})
		}
	}
	return net
}

// peStats propagates the evidence on a lazy engine and snapshots the
// pruning counters after reading only P(e) — no posterior is pulled, so
// the counters reflect the collect pass alone (distribution stays wholly
// undemanded).
func peStats(t *testing.T, eng *Engine, ev Evidence) (float64, PropagationStats) {
	t.Helper()
	res, err := eng.Propagate(ev)
	if err != nil {
		t.Fatalf("propagate %v: %v", ev, err)
	}
	defer res.Close()
	stats, ok := res.PropagationStats()
	if !ok {
		t.Fatal("engine is not lazy")
	}
	return res.ProbabilityOfEvidence(), stats
}

// TestLazyDSeparationStrictlyReducesWork: with the far end of the chain
// observed, every collect message on the path to the root is live. Also
// observing a variable in the middle of that path d-separates the far
// evidence from the root, so the separator it sits on blocks — the message
// across it collapses to a scalar — and the message, task and flop counts
// must all strictly drop, while the answers stay exact.
func TestLazyDSeparationStrictlyReducesWork(t *testing.T) {
	const n = 10
	net := chainNet(t, n, false)
	eng, err := net.Compile(Options{Workers: 2, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eager, err := net.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()

	// Pick the chain end whose clique path to the (possibly rerooted) tree
	// root is longer, and the separator variable halfway along that path:
	// that variable d-separates the far evidence from the root.
	tree := eng.inner.Tree()
	far := "X0"
	if tree.Depth(tree.CliqueOf(eng.net.inner.ID(fmt.Sprintf("X%d", n-1)))) >
		tree.Depth(tree.CliqueOf(eng.net.inner.ID("X0"))) {
		far = fmt.Sprintf("X%d", n-1)
	}
	var path []int // cliques from far's clique up to the root
	for c := tree.CliqueOf(eng.net.inner.ID(far)); c >= 0; c = tree.Cliques[c].Parent {
		path = append(path, c)
	}
	if len(path) < 4 {
		t.Fatalf("chain compiled to a %d-clique path; need depth for a midpoint", len(path))
	}
	midClique := path[len(path)/2]
	if len(tree.Cliques[midClique].SepVars) != 1 {
		t.Fatalf("chain separator holds %d variables, want 1", len(tree.Cliques[midClique].SepVars))
	}
	mid := eng.net.inner.Name(tree.Cliques[midClique].SepVars[0])

	ev1 := Evidence{far: 1}
	ev2 := Evidence{far: 1, mid: 0}
	pe1, s1 := peStats(t, eng, ev1)
	pe2, s2 := peStats(t, eng, ev2)

	// Exactness first: both configurations match the eager engine.
	for ev, lazyPE := range map[*Evidence]float64{&ev1: pe1, &ev2: pe2} {
		res, err := eager.Propagate(*ev)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(res.ProbabilityOfEvidence() - lazyPE); d > 1e-12 {
			t.Errorf("P(e) for %v: lazy %v eager %v", *ev, lazyPE, res.ProbabilityOfEvidence())
		}
		res.Close()
	}

	// The metamorphic claims: observing mid strictly reduces work.
	if s2.MessagesSent >= s1.MessagesSent {
		t.Errorf("MessagesSent %d → %d: observing %s did not reduce sent messages", s1.MessagesSent, s2.MessagesSent, mid)
	}
	if s2.MessagesBlocked <= s1.MessagesBlocked {
		t.Errorf("MessagesBlocked %d → %d: observing %s blocked nothing", s1.MessagesBlocked, s2.MessagesBlocked, mid)
	}
	if s2.TasksRun >= s1.TasksRun {
		t.Errorf("TasksRun %d → %d: observing %s did not reduce tasks", s1.TasksRun, s2.TasksRun, mid)
	}
	if s2.Flops >= s1.Flops {
		t.Errorf("Flops %d → %d: observing %s did not reduce flops", s1.Flops, s2.Flops, mid)
	}
	if s1.Flops >= s1.FlopsFull || s2.Flops >= s2.FlopsFull {
		t.Errorf("lazy flops (%d, %d) not below the eager budget %d", s1.Flops, s2.Flops, s1.FlopsFull)
	}
}

// TestLazyBarrenBranchesCostNothing: hanging unobserved, unqueried pendant
// leaves off every interior chain variable must change neither P(e) nor any
// chain posterior (the leaves marginalize to one), and the query must not
// materialize a single extra table entry for them — barren subtrees are
// never copied, reduced or messaged.
func TestLazyBarrenBranchesCostNothing(t *testing.T) {
	const n = 6
	bare := chainNet(t, n, false)
	leafy := chainNet(t, n, true)
	// Evidence on both chain ends keeps every chain edge active no matter
	// where either compilation roots the tree, making the two engines'
	// collect workloads directly comparable.
	ev := Evidence{"X0": 1, fmt.Sprintf("X%d", n-1): 0}

	bareEng, err := bare.Compile(Options{Workers: 2, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer bareEng.Close()
	leafyEng, err := leafy.Compile(Options{Workers: 2, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leafyEng.Close()

	peBare, sBare := peStats(t, bareEng, ev)
	peLeafy, sLeafy := peStats(t, leafyEng, ev)

	if d := math.Abs(peBare - peLeafy); d > 1e-12 {
		t.Errorf("barren leaves changed P(e): %v vs %v", peBare, peLeafy)
	}
	if sLeafy.MaterializedEntries > sBare.MaterializedEntries {
		t.Errorf("barren leaves inflated materialization: %d entries vs %d",
			sLeafy.MaterializedEntries, sBare.MaterializedEntries)
	}
	if sLeafy.MessagesSent > sBare.MessagesSent {
		t.Errorf("barren leaves added messages: %d sent vs %d", sLeafy.MessagesSent, sBare.MessagesSent)
	}

	// Answers are unchanged too: every chain posterior agrees across the
	// two networks (queried after the stats snapshots above, so demand-
	// driven distribution never polluted the materialization comparison).
	resB, err := bareEng.Propagate(ev)
	if err != nil {
		t.Fatal(err)
	}
	defer resB.Close()
	resL, err := leafyEng.Propagate(ev)
	if err != nil {
		t.Fatal(err)
	}
	defer resL.Close()
	for i := 1; i < n-1; i++ {
		v := fmt.Sprintf("X%d", i)
		pb, err := resB.Posterior(v)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := resL.Posterior(v)
		if err != nil {
			t.Fatal(err)
		}
		for s := range pb {
			if d := math.Abs(pb[s] - pl[s]); d > 1e-12 {
				t.Errorf("barren leaves moved posterior %s[%d] by %g", v, s, d)
			}
		}
	}
}

// TestLazySoftEvidenceMatchesEager pins the soft-evidence path: likelihood
// weights dirty exactly one clique per variable and never shrink a hull,
// and the posteriors must match the eager engine.
func TestLazySoftEvidenceMatchesEager(t *testing.T) {
	net := chainNet(t, 8, false)
	soft := SoftEvidence{"X3": {0.9, 0.4}}
	ev := Evidence{"X6": 1}

	lazyEng, err := net.Compile(Options{Workers: 2, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lazyEng.Close()
	eager, err := net.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()

	lr, err := lazyEng.PropagateSoft(ev, soft)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	er, err := eager.PropagateSoft(ev, soft)
	if err != nil {
		t.Fatal(err)
	}
	defer er.Close()

	if d := math.Abs(lr.ProbabilityOfEvidence() - er.ProbabilityOfEvidence()); d > 1e-12 {
		t.Errorf("soft P(e): lazy %v eager %v", lr.ProbabilityOfEvidence(), er.ProbabilityOfEvidence())
	}
	lp, err := lr.Posteriors()
	if err != nil {
		t.Fatal(err)
	}
	ep, err := er.Posteriors()
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range ep {
		for s := range p {
			if d := math.Abs(lp[v][s] - p[s]); d > 1e-9 {
				t.Errorf("soft posterior %q[%d]: lazy %v eager %v", v, s, lp[v][s], p[s])
			}
		}
	}
	if stats, ok := lr.PropagationStats(); !ok || stats.MessagesSkipped == 0 {
		t.Errorf("soft+hard evidence on a chain should still skip messages: %+v", stats)
	}
}
