package evprop

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzLazyVsEager drives the lazy and eager engines over fuzzer-chosen
// random networks and evidence maps and requires them to agree — on every
// posterior, on P(e) and on the MPE probability — to float tolerance. The
// fuzz inputs deterministically seed the network generator and the
// evidence selection, so every crash reproduces. This is the third
// differential fuzz target next to the cache-signature and blocked-kernel
// ones (make fuzz-smoke).
func FuzzLazyVsEager(f *testing.F) {
	f.Add(int64(1), uint32(0b0000101), uint32(0b10), uint8(8), false)
	f.Add(int64(2), uint32(0), uint32(0), uint8(3), false)
	f.Add(int64(3), uint32(0b1111111111), uint32(0b1010101010), uint8(12), true)
	f.Add(int64(4), uint32(1), uint32(1), uint8(0), true)
	f.Add(int64(5), uint32(0b1001000), uint32(0b0001000), uint8(6), false)
	f.Fuzz(func(t *testing.T, seed int64, evMask, evStates uint32, nv uint8, useSoft bool) {
		n := 5 + int(nv%8) // 5..12 variables
		net := RandomNetwork(n, 2, 3, seed)
		vars := net.Variables()
		ev := Evidence{}
		for i, v := range vars {
			if evMask&(1<<(uint(i)%32)) != 0 {
				ev[v] = int(evStates>>(uint(i)%32)) & 1
			}
		}
		if len(ev) == len(vars) {
			delete(ev, vars[0]) // keep at least one queryable variable
		}
		var soft SoftEvidence
		if useSoft {
			rng := rand.New(rand.NewSource(seed))
			for _, v := range vars {
				if _, fixed := ev[v]; !fixed {
					soft = SoftEvidence{v: {0.2 + rng.Float64(), 0.2 + rng.Float64()}}
					break
				}
			}
		}

		eager, err := net.Compile(Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer eager.Close()
		lazyEng, err := net.Compile(Options{Workers: 2, Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		defer lazyEng.Close()

		propagate := func(e *Engine) *QueryResult {
			t.Helper()
			var res *QueryResult
			if soft != nil {
				res, err = e.PropagateSoft(ev, soft)
			} else {
				res, err = e.Propagate(ev)
			}
			if err != nil {
				t.Fatalf("propagate (lazy=%v): %v", e == lazyEng, err)
			}
			return res
		}
		er := propagate(eager)
		defer er.Close()
		lr := propagate(lazyEng)
		defer lr.Close()

		const tol = 1e-9
		pe, pl := er.ProbabilityOfEvidence(), lr.ProbabilityOfEvidence()
		if d := math.Abs(pe - pl); d > tol*math.Max(1, math.Abs(pe)) {
			t.Fatalf("P(e): eager %v lazy %v (diff %g)", pe, pl, d)
		}
		ep, err := er.Posteriors()
		if err != nil {
			t.Fatal(err)
		}
		lp, err := lr.Posteriors()
		if err != nil {
			t.Fatal(err)
		}
		for v, p := range ep {
			for s := range p {
				if d := math.Abs(lp[v][s] - p[s]); d > tol {
					t.Fatalf("posterior %q[%d]: eager %v lazy %v", v, s, p[s], lp[v][s])
				}
			}
		}
		// MPE assignments may legitimately differ on ties; the maximum
		// probability itself must agree.
		_, emp, err := er.MPE()
		if err != nil {
			t.Fatal(err)
		}
		_, lmp, err := lr.MPE()
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(emp - lmp); d > tol*math.Max(1, emp) {
			t.Fatalf("MPE probability: eager %v lazy %v", emp, lmp)
		}
	})
}
