package evprop

import (
	"testing"
)

// Lazy-vs-eager serving benchmarks: the same 40-node network, queried for a
// handful of target posteriors the way a point-query API is — the workload
// lazy propagation exists for. "Sparse" observes 2 variables, "dense" 20 of
// 40 (dense evidence shrinks tables but dirties most of the tree, so the
// lazy win narrows to hull-shrunk kernels and blocked separators).

func lazyBenchSetup(b *testing.B, lazy bool, denseEvidence bool) (*Engine, Evidence, []string) {
	b.Helper()
	net := RandomNetwork(40, 2, 3, 7)
	eng, err := net.Compile(Options{Workers: 4, Lazy: lazy})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	vars := net.Variables()
	ev := Evidence{vars[3]: 1, vars[17]: 0}
	if denseEvidence {
		for i := 0; i < len(vars); i += 2 {
			ev[vars[i]] = i % 2
		}
	}
	var query []string
	for _, v := range []string{vars[1], vars[20], vars[39]} {
		if _, fixed := ev[v]; !fixed {
			query = append(query, v)
		}
	}
	return eng, ev, query
}

func benchTargetedQuery(b *testing.B, eng *Engine, ev Evidence, query []string) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Propagate(ev)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Posteriors(query...); err != nil {
			b.Fatal(err)
		}
		res.Close()
	}
}

// BenchmarkLazyQuery measures the lazy engine on sparse-evidence point
// queries: pruned collect over the disturbed part of the precalibrated
// tree, then demand-driven distribution down the three queried paths only.
// BenchmarkEagerQuery is the identical workload on the eager engine.
func BenchmarkLazyQuery(b *testing.B) {
	eng, ev, query := lazyBenchSetup(b, true, false)
	benchTargetedQuery(b, eng, ev, query)
}

func BenchmarkEagerQuery(b *testing.B) {
	eng, ev, query := lazyBenchSetup(b, false, false)
	benchTargetedQuery(b, eng, ev, query)
}

// BenchmarkLazyQueryDense observes half the variables; most cliques are
// dirty, so pruning comes from evidence hulls and blocked separators rather
// than skipped subtrees.
func BenchmarkLazyQueryDense(b *testing.B) {
	eng, ev, query := lazyBenchSetup(b, true, true)
	benchTargetedQuery(b, eng, ev, query)
}

func BenchmarkEagerQueryDense(b *testing.B) {
	eng, ev, query := lazyBenchSetup(b, false, true)
	benchTargetedQuery(b, eng, ev, query)
}

// TestLazyBenchWorkloadsAgree pins the benchmark pair to the same answers,
// so the ns/op comparison above is apples to apples.
func TestLazyBenchWorkloadsAgree(t *testing.T) {
	for _, dense := range []bool{false, true} {
		var posts [2]map[string][]float64
		for i, lazy := range []bool{false, true} {
			b := &testing.B{}
			eng, ev, query := lazyBenchSetup(b, lazy, dense)
			res, err := eng.Propagate(ev)
			if err != nil {
				t.Fatal(err)
			}
			posts[i], err = res.Posteriors(query...)
			if err != nil {
				t.Fatal(err)
			}
			res.Close()
		}
		for v, p := range posts[0] {
			for s := range p {
				if d := p[s] - posts[1][v][s]; d > 1e-9 || d < -1e-9 {
					t.Errorf("dense=%v: %q[%d] eager %v lazy %v (diff %g)",
						dense, v, s, p[s], posts[1][v][s], d)
				}
			}
		}
	}
}
