// Pedigree analysis: genotype inference for a recessive disease across a
// three-generation family — the genetics application the paper's
// introduction cites (gene-expression / inheritance models).
//
// Each individual has a genotype variable with three states (0 = AA,
// 1 = Aa carrier, 2 = aa affected). Founders follow Hardy–Weinberg priors;
// children follow Mendelian inheritance from both parents; each individual
// also has an observable phenotype (0 = healthy, 1 = affected) that is
// deterministic in the genotype. Given one affected grandchild, we compute
// carrier posteriors for the whole family and the most probable combined
// explanation.
//
//	go run ./examples/genetics
package main

import (
	"fmt"
	"log"

	"evprop"
)

// q is the disease-allele frequency.
const q = 0.05

func main() {
	net := evprop.NewNetwork()

	// Founders: two sets of grandparents and one married-in parent.
	founders := []string{"GrandpaP", "GrandmaP", "GrandpaM", "GrandmaM", "FatherInLaw"}
	for _, f := range founders {
		net.MustAddVariable(gt(f), 3, nil, hardyWeinberg())
		addPhenotype(net, f)
	}
	// Second generation.
	addChild(net, "Father", "GrandpaP", "GrandmaP")
	addChild(net, "Mother", "GrandpaM", "GrandmaM")
	addChild(net, "Aunt", "GrandpaM", "GrandmaM")
	// Third generation.
	addChild(net, "Child1", "Father", "Mother")
	addChild(net, "Child2", "Father", "Mother")
	addChild(net, "Cousin", "FatherInLaw", "Aunt")

	eng, err := net.Compile(evprop.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nc, w := eng.Cliques()
	fmt.Printf("pedigree model: %d variables, %d cliques (max width %d)\n\n",
		len(net.Variables()), nc, w)

	// Observation: Child1 is affected; everyone else tested so far is
	// healthy.
	ev := evprop.Evidence{
		ph("Child1"): 1,
		ph("Father"): 0, ph("Mother"): 0,
		ph("GrandpaP"): 0, ph("GrandmaP"): 0,
		ph("GrandpaM"): 0, ph("GrandmaM"): 0,
	}

	members := []string{
		"GrandpaP", "GrandmaP", "GrandpaM", "GrandmaM",
		"Father", "Mother", "Aunt", "FatherInLaw", "Child2", "Cousin",
	}
	queries := make([]string, len(members))
	for i, m := range members {
		queries[i] = gt(m)
	}
	post, err := eng.Query(ev, queries...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("member       P(AA)    P(Aa)    P(aa)   carrier-or-affected")
	for _, m := range members {
		d := post[gt(m)]
		fmt.Printf("%-11s %.4f   %.4f   %.4f   %.4f\n", m, d[0], d[1], d[2], d[1]+d[2])
	}

	// Both parents of an affected child must carry the allele.
	if post[gt("Father")][0] > 1e-9 || post[gt("Mother")][0] > 1e-9 {
		log.Fatal("inconsistent: a parent of an affected child cannot be AA")
	}

	// Most probable joint explanation of the observations.
	mpe, p, err := eng.MostProbableExplanation(ev)
	if err != nil {
		log.Fatal(err)
	}
	genotypes := []string{"AA", "Aa", "aa"}
	fmt.Printf("\nmost probable joint explanation (P = %.4g):\n", p)
	for _, m := range members {
		fmt.Printf("  %-11s %s\n", m, genotypes[mpe[gt(m)]])
	}
}

func gt(name string) string { return name + ".G" }
func ph(name string) string { return name + ".Ph" }

// hardyWeinberg is the founder genotype prior for allele frequency q.
func hardyWeinberg() []float64 {
	p := 1 - q
	return []float64{p * p, 2 * p * q, q * q}
}

// addChild wires a child's genotype to both parents with the Mendelian CPT
// plus its phenotype node.
func addChild(net *evprop.Network, child, father, mother string) {
	cpt := make([]float64, 0, 27)
	for f := 0; f < 3; f++ {
		for m := 0; m < 3; m++ {
			fa := alleleProb(f)
			ma := alleleProb(m)
			paa := fa * ma               // child AA
			pab := fa*(1-ma) + (1-fa)*ma // child Aa
			pbb := (1 - fa) * (1 - ma)   // child aa
			cpt = append(cpt, paa, pab, pbb)
		}
	}
	net.MustAddVariable(gt(child), 3, []string{gt(father), gt(mother)}, cpt)
	addPhenotype(net, child)
}

// alleleProb returns the probability that a parent with the given genotype
// transmits the healthy allele A.
func alleleProb(genotype int) float64 {
	switch genotype {
	case 0:
		return 1
	case 1:
		return 0.5
	default:
		return 0
	}
}

// addPhenotype adds the deterministic phenotype: affected iff genotype aa.
func addPhenotype(net *evprop.Network, name string) {
	net.MustAddVariable(ph(name), 2, []string{gt(name)}, []float64{
		1, 0, // AA
		1, 0, // Aa
		0, 1, // aa
	})
}
