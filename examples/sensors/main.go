// Sensor-fault diagnosis: a synthetic industrial-monitoring network built
// programmatically with the public API — the kind of large structured model
// (pattern recognition / diagnosis) the paper's introduction cites.
//
// A plant has a line of machines; each machine's health depends on the
// previous machine (vibration propagates down the line) plus a shared power
// bus, and each machine is watched by two noisy sensors. Given a pattern of
// sensor alarms, we infer which machines have actually failed.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"evprop"
)

const machines = 12

func main() {
	net := buildPlant()
	eng, err := net.Compile(evprop.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	cliques, width := eng.Cliques()
	fmt.Printf("plant model: %d variables, junction tree: %d cliques (max width %d)\n\n",
		len(net.Variables()), cliques, width)

	// Alarm pattern: both sensors of machine 4 fire, one sensor of
	// machines 5 and 6 fires, everything else is quiet.
	ev := evprop.Evidence{}
	for m := 0; m < machines; m++ {
		a, b := 0, 0
		switch m {
		case 4:
			a, b = 1, 1
		case 5, 6:
			a = 1
		}
		ev[sensorName(m, 0)] = a
		ev[sensorName(m, 1)] = b
	}

	post, err := eng.Query(ev, machineNames()...)
	if err != nil {
		log.Fatal(err)
	}
	busPost, err := eng.Query(ev, "PowerBus")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("machine   P(failed | alarms)   assessment")
	for m := 0; m < machines; m++ {
		p := post[machineName(m)][1]
		bar := ""
		for i := 0.0; i < p; i += 0.05 {
			bar += "█"
		}
		verdict := "ok"
		switch {
		case p > 0.5:
			verdict = "FAILED"
		case p > 0.2:
			verdict = "suspect"
		}
		fmt.Printf("  M%-6d %.4f  %-20s %s\n", m, p, bar, verdict)
	}
	fmt.Printf("\nP(power bus degraded | alarms) = %.4f\n", busPost["PowerBus"][1])

	pe, err := eng.ProbabilityOfEvidence(ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("likelihood of this alarm pattern: %.3g\n", pe)
}

func machineName(m int) string { return fmt.Sprintf("M%d", m) }

func machineNames() []string {
	out := make([]string, machines)
	for m := range out {
		out[m] = machineName(m)
	}
	return out
}

func sensorName(m, k int) string { return fmt.Sprintf("S%d_%d", m, k) }

// buildPlant wires the plant model: PowerBus -> every machine; machine m ->
// machine m+1; machine m -> its two sensors.
func buildPlant() *evprop.Network {
	net := evprop.NewNetwork()
	net.MustAddVariable("PowerBus", 2, nil, []float64{0.95, 0.05})

	for m := 0; m < machines; m++ {
		name := machineName(m)
		if m == 0 {
			// P(fail | bus): healthy bus 2%, degraded bus 30%.
			net.MustAddVariable(name, 2, []string{"PowerBus"}, []float64{
				0.98, 0.02,
				0.70, 0.30,
			})
		} else {
			// P(fail | bus, previous machine): upstream failure shakes
			// this machine too.
			net.MustAddVariable(name, 2, []string{"PowerBus", machineName(m - 1)}, []float64{
				0.98, 0.02, // bus ok, prev ok
				0.75, 0.25, // bus ok, prev failed
				0.72, 0.28, // bus degraded, prev ok
				0.45, 0.55, // bus degraded, prev failed
			})
		}
		for k := 0; k < 2; k++ {
			// Noisy sensor: 5% false alarms, 15% missed detections.
			net.MustAddVariable(sensorName(m, k), 2, []string{name}, []float64{
				0.95, 0.05,
				0.15, 0.85,
			})
		}
	}
	return net
}
