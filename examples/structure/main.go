// Structure learning end to end: sample data from a hidden
// tree-structured process, recover the dependency structure with Chow–Liu,
// fit parameters, and compare the learned model's answers to the truth —
// the sample → learn → infer loop the library closes around the paper's
// inference engine.
//
//	go run ./examples/structure
package main

import (
	"fmt"
	"log"
	"strings"

	"evprop"
)

func main() {
	// The hidden truth: a small weather process.
	//   Season -> Rain -> Wet ; Rain -> Traffic
	truth := evprop.NewNetwork()
	truth.MustAddVariable("Season", 2, nil, []float64{0.6, 0.4}) // 0=dry, 1=wet season
	truth.MustAddVariable("Rain", 2, []string{"Season"}, []float64{
		0.9, 0.1,
		0.3, 0.7,
	})
	truth.MustAddVariable("Wet", 2, []string{"Rain"}, []float64{
		0.95, 0.05,
		0.10, 0.90,
	})
	truth.MustAddVariable("Traffic", 2, []string{"Rain"}, []float64{
		0.7, 0.3,
		0.2, 0.8,
	})

	// Observe the world: 20k complete samples.
	data, err := truth.SampleN(20000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d observations of %d variables\n\n", len(data), len(data[0]))

	// Recover structure and parameters with Chow–Liu.
	states := map[string]int{"Season": 2, "Rain": 2, "Wet": 2, "Traffic": 2}
	learned, err := evprop.LearnChowLiu(data, states, 1)
	if err != nil {
		log.Fatal(err)
	}

	// What did we learn? Show each variable's Markov blanket.
	fmt.Println("learned dependency structure (Markov blankets):")
	for _, v := range learned.Variables() {
		mb, err := learned.MarkovBlanket(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s ↔ {%s}\n", v, strings.Join(mb, ", "))
	}
	fmt.Println()

	// Does the learned model answer like the truth?
	engTruth, err := truth.Compile(evprop.Options{})
	if err != nil {
		log.Fatal(err)
	}
	engLearned, err := learned.Compile(evprop.Options{})
	if err != nil {
		log.Fatal(err)
	}
	queries := []struct {
		ev     evprop.Evidence
		target string
		label  string
	}{
		{evprop.Evidence{"Wet": 1}, "Rain", "P(Rain | ground wet)"},
		{evprop.Evidence{"Traffic": 1}, "Rain", "P(Rain | heavy traffic)"},
		{evprop.Evidence{"Wet": 1, "Traffic": 0}, "Season", "P(wet season | wet ground, light traffic)"},
	}
	fmt.Println("query                                          truth   learned")
	for _, q := range queries {
		a, err := engTruth.Query(q.ev, q.target)
		if err != nil {
			log.Fatal(err)
		}
		b, err := engLearned.Query(q.ev, q.target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s %.4f   %.4f\n", q.label, a[q.target][1], b[q.target][1])
	}

	// Structural sanity: in the truth, Wet ⊥ Traffic | Rain. The learned
	// tree should agree.
	sep, err := learned.DSeparated([]string{"Wet"}, []string{"Traffic"}, []string{"Rain"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearned model: Wet ⊥ Traffic | Rain?  %v (truth: true)\n", sep)
}
