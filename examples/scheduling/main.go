// Scheduler comparison: run the same inference workload under every
// scheduler the library implements and report wall-clock times, plus the
// effect of Algorithm 1 rerooting on the junction tree's critical path —
// the two knobs the paper contributes.
//
// On a single-core host the wall-clock numbers will not show parallel
// speedup (use `evbench` for the simulated-multicore figures); the point of
// this example is exercising the public API's scheduler options on a
// non-trivial workload.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"evprop"
	"evprop/internal/jtree"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

func main() {
	// A synthetic 60-variable network, large enough that propagation cost
	// dominates compilation.
	net := evprop.RandomNetwork(60, 3, 3, 42)
	vars := net.Variables()
	ev := evprop.Evidence{vars[1]: 0, vars[len(vars)-1]: 1}

	fmt.Printf("workload: %d ternary variables, GOMAXPROCS=%d\n\n",
		len(vars), runtime.GOMAXPROCS(0))

	schedulers := []string{
		evprop.SchedulerSerial,
		evprop.SchedulerLevelSync,
		evprop.SchedulerDataParallel,
		evprop.SchedulerCentralized,
		evprop.SchedulerCollaborative,
	}
	fmt.Println("scheduler      best-of-5 wall time    P(evidence)")
	var reference float64
	for _, s := range schedulers {
		eng, err := net.Compile(evprop.Options{Scheduler: s, Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			log.Fatal(err)
		}
		best := time.Duration(1 << 62)
		var pe float64
		for i := 0; i < 5; i++ {
			start := time.Now()
			pe, err = eng.ProbabilityOfEvidence(ev)
			if err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if reference == 0 {
			reference = pe
		} else if diff := pe - reference; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("scheduler %s disagrees: %g vs %g", s, pe, reference)
		}
		fmt.Printf("%-14s %18v    %.6g\n", s, best, pe)
	}

	// Instrumentation: run the collaborative scheduler with tracing on a
	// generated junction tree and render the per-worker timeline (the
	// real-execution counterpart of the paper's Fig. 8).
	fmt.Println("\nexecution trace (4 workers):")
	tr, err := jtree.Random(jtree.RandomConfig{N: 48, Width: 10, States: 2, Degree: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.MaterializeRandom(1); err != nil {
		log.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := sched.Run(st, sched.Options{Workers: 4, Threshold: 512, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	metrics.Trace.Gantt(os.Stdout, 64)
	for w, u := range metrics.Trace.Utilization() {
		fmt.Printf("  worker %d utilization: %.1f%%\n", w, 100*u)
	}

	// Rerooting: compare the same query with and without Algorithm 1.
	fmt.Println("\nrerooting (Algorithm 1):")
	for _, disable := range []bool{true, false} {
		eng, err := net.Compile(evprop.Options{DisableReroot: disable})
		if err != nil {
			log.Fatal(err)
		}
		label := "rerooted"
		if disable {
			label = "original"
		}
		post, err := eng.Query(ev, vars[10])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s  P(%s|e) = %.6f (identical results, shorter critical path)\n",
			label, vars[10], post[vars[10]][1])
	}
}
