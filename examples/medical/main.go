// Medical diagnosis with the Asia ("chest clinic") network — the classic
// Lauritzen–Spiegelhalter expert-system example, the same family of
// workloads (medical diagnosis) the paper's introduction motivates.
//
// The program walks a clinical scenario: a smoker returns from Asia with
// dyspnea, and we watch the differential diagnosis shift as test results
// arrive.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"evprop"
)

func main() {
	net := evprop.Asia()
	eng, err := net.Compile(evprop.Options{})
	if err != nil {
		log.Fatal(err)
	}

	diseases := []string{"Tub", "Lung", "Bronc", "TbOrCa"}
	scenarios := []struct {
		title    string
		evidence evprop.Evidence
	}{
		{"no findings (population priors)", nil},
		{"smoker with dyspnea", evprop.Evidence{"Smoke": 1, "Dysp": 1}},
		{"… who recently visited Asia", evprop.Evidence{"Smoke": 1, "Dysp": 1, "Asia": 1}},
		{"… and has a positive X-ray", evprop.Evidence{"Smoke": 1, "Dysp": 1, "Asia": 1, "XRay": 1}},
		{"… but the X-ray came back clear", evprop.Evidence{"Smoke": 1, "Dysp": 1, "Asia": 1, "XRay": 0}},
	}

	for _, sc := range scenarios {
		post, err := eng.Query(sc.evidence, diseases...)
		if err != nil {
			log.Fatal(err)
		}
		pe, err := eng.ProbabilityOfEvidence(sc.evidence)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sc.title)
		if len(sc.evidence) > 0 {
			fmt.Printf("  likelihood of presentation: %.4f\n", pe)
		}
		for _, d := range diseases {
			fmt.Printf("  P(%-6s | e) = %.4f\n", d, post[d][1])
		}
		fmt.Println()
	}

	// Test selection: with only the history known, which examination is
	// expected to be most informative about serious disease (TbOrCa)?
	history := evprop.Evidence{"Smoke": 1, "Dysp": 1, "Asia": 1}
	tests, bits, err := eng.BestObservation(history, "TbOrCa", "XRay", "Bronc", "Asia")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("next-test ranking by expected information about TbOrCa:")
	for i, name := range tests {
		fmt.Printf("  %d. %-6s %.4f bits\n", i+1, name, bits[i])
	}
	fmt.Println()

	// A treatment decision: is the cause more likely bronchitis or
	// tuberculosis-or-cancer for the clear-X-ray patient?
	ev := evprop.Evidence{"Smoke": 1, "Dysp": 1, "Asia": 1, "XRay": 0}
	state, p, err := eng.MostProbableState(ev, "Bronc")
	if err != nil {
		log.Fatal(err)
	}
	verdict := "unlikely"
	if state == 1 {
		verdict = "likely"
	}
	fmt.Printf("conclusion: bronchitis is %s (posterior %.3f) — the clear X-ray\n", verdict, p)
	fmt.Println("has explained away the serious causes of the dyspnea.")
}
