// Quickstart: build a tiny Bayesian network with the public evprop API,
// compile it to a junction tree, and ask posterior questions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"evprop"
)

func main() {
	// A three-variable network: Cloudy -> Rain -> WetGrass.
	net := evprop.NewNetwork()
	net.MustAddVariable("Cloudy", 2, nil, []float64{0.5, 0.5})
	net.MustAddVariable("Rain", 2, []string{"Cloudy"}, []float64{
		0.8, 0.2, // Cloudy = no
		0.2, 0.8, // Cloudy = yes
	})
	net.MustAddVariable("WetGrass", 2, []string{"Rain"}, []float64{
		0.9, 0.1, // Rain = no
		0.1, 0.9, // Rain = yes
	})

	// Compile: moralize, triangulate, build the junction tree, reroot it
	// with the paper's Algorithm 1, and prepare the parallel propagation
	// engine (collaborative scheduler by default).
	eng, err := net.Compile(evprop.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cliques, width := eng.Cliques()
	fmt.Printf("junction tree: %d cliques, max width %d\n\n", cliques, width)

	// Prior over Rain.
	prior, err := eng.Query(nil, "Rain")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(Rain)            = %.4f\n", prior["Rain"][1])

	// Posterior after observing wet grass: evidence propagation.
	post, err := eng.Query(evprop.Evidence{"WetGrass": 1}, "Rain", "Cloudy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(Rain | wet)      = %.4f\n", post["Rain"][1])
	fmt.Printf("P(Cloudy | wet)    = %.4f\n", post["Cloudy"][1])

	// The likelihood of the observation itself.
	pe, err := eng.ProbabilityOfEvidence(evprop.Evidence{"WetGrass": 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(WetGrass = 1)    = %.4f\n", pe)
}
