GO ?= go

.PHONY: build test race vet staticcheck fmt-check bench bench-serving bench-kernels smoke-kernels fuzz-smoke trace smoke-evtop smoke-multimodel smoke-replay smoke-trace check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (it is not vendored); CI installs and runs
# it. Skips with a notice when the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

bench-serving:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkMutexSerializedQuery|BenchmarkCachedQuery|BenchmarkSingleflightStorm' -benchtime 2s -cpu 4 .

# Per-primitive kernel timings (blocked vs scalar, median-of-5 ns/entry at
# small/medium/large cardinalities), recorded in BENCH_kernels.json. The
# README perf table and the ≥2× blocked-vs-scalar acceptance numbers come
# from this file.
bench-kernels:
	$(GO) run ./cmd/evkernels -iters 5 -out BENCH_kernels.json

# One-iteration smoke of the kernel bench harness: validates the tool runs
# and emits well-formed JSON without spending benchmarking time.
smoke-kernels:
	@$(GO) run ./cmd/evkernels -iters 1 -min-entries 262144 -out /tmp/evkernels-smoke.json
	@grep -q '"speedup"' /tmp/evkernels-smoke.json || { echo "smoke-kernels: no results"; exit 1; }
	@echo "smoke-kernels: ok"

# Short fuzz runs (the same smoke steps CI runs); go test -fuzz accepts one
# fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzEvidenceSignature -fuzztime 10s ./internal/cache
	$(GO) test -run xxx -fuzz FuzzKernelBlockedVsScalar -fuzztime 10s ./internal/potential
	$(GO) test -run xxx -fuzz FuzzLazyVsEager -fuzztime 10s .

# Smoke-test the Chrome trace export: one traced propagation, written as
# trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev).
trace:
	$(GO) run ./cmd/evbench -trace /tmp/evprop-trace.json

# Smoke-test the live dashboard end to end: start evserve on an ephemeral
# port, render one evtop frame against its /v1/stream, then shut down.
smoke-evtop:
	@$(GO) build -o /tmp/evserve-smoke ./cmd/evserve
	@$(GO) build -o /tmp/evtop-smoke ./cmd/evtop
	@/tmp/evserve-smoke -addr 127.0.0.1:18098 >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18098/v1/readyz >/dev/null 2>&1; then break; fi; \
		sleep 0.1; done; \
	curl -sf -o /dev/null -X POST http://127.0.0.1:18098/v1/query \
		-d '{"evidence":{"XRay":1}}'; \
	/tmp/evtop-smoke -url http://127.0.0.1:18098 -once | grep -q "evtop —"; rc=$$?; \
	kill $$pid; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then echo "smoke-evtop: frame did not render"; exit 1; fi; \
	echo "smoke-evtop: ok"

# Smoke-test multi-model serving end to end: boot evserve with two models
# from -models-dir, query both, hot-reload one mid-traffic (expecting a
# version bump and zero failed queries), and check the per-model stats.
smoke-multimodel:
	@$(GO) build -o /tmp/evserve-smoke ./cmd/evserve
	@dir=$$(mktemp -d); trap 'rm -rf '"$$dir" EXIT; \
	cp cmd/evserve/testdata/models/rainA.bif $$dir/wet.bif; \
	cp cmd/evserve/testdata/models/rainB.bif $$dir/dry.bif; \
	/tmp/evserve-smoke -models-dir $$dir -addr 127.0.0.1:18099 >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18099/v1/readyz >/dev/null 2>&1; then break; fi; \
		sleep 0.1; done; \
	fail=0; \
	curl -sf -X POST http://127.0.0.1:18099/v1/models/wet/query \
		-d '{"evidence":{"Wet":1},"query":["Rain"]}' | grep -q p_evidence || fail=1; \
	curl -sf -X POST http://127.0.0.1:18099/v1/models/dry/query \
		-d '{"evidence":{"Wet":1},"query":["Rain"]}' | grep -q p_evidence || fail=2; \
	( for i in $$(seq 1 60); do \
		curl -sf -X POST http://127.0.0.1:18099/v1/models/wet/query \
			-d '{"evidence":{"Wet":1},"query":["Rain"]}' >/dev/null || echo fail >> $$dir/errs; \
	done ) & traffic=$$!; \
	cp cmd/evserve/testdata/models/rainB.bif $$dir/wet.bif; \
	curl -sf -X POST "http://127.0.0.1:18099/v1/models/wet/reload?wait=1" \
		| grep -q '"version":2' || fail=3; \
	wait $$traffic; \
	[ ! -e $$dir/errs ] || fail=4; \
	curl -sf http://127.0.0.1:18099/v1/models/wet/stats | grep -q '"queries"' || fail=5; \
	curl -sf http://127.0.0.1:18099/v1/stats | grep -q '"legacy_requests"' || fail=6; \
	curl -sf http://127.0.0.1:18099/v1/readyz >/dev/null || fail=7; \
	kill $$pid; wait $$pid 2>/dev/null; \
	if [ $$fail -ne 0 ]; then echo "smoke-multimodel: step $$fail failed"; exit 1; fi; \
	echo "smoke-multimodel: ok"

# Smoke-test the durable audit pipeline end to end: boot evserve with
# -audit-dir, drive queries and an MPE, shut down cleanly, then replay the
# recorded segments with evreplay — the chain must verify, a differential
# replay against the same build must reproduce every answer bit for bit,
# and a one-byte corruption must be detected. The second leg repeats the
# record→diff cycle with -lazy on both sides: lazy propagation is
# deterministic for a given evidence set, so lazy-recorded answers replay
# Float64bits-exact on a lazy engine.
smoke-replay:
	@$(GO) build -o /tmp/evserve-smoke ./cmd/evserve
	@$(GO) build -o /tmp/evreplay-smoke ./cmd/evreplay
	@dir=$$(mktemp -d); trap 'rm -rf '"$$dir" EXIT; \
	/tmp/evserve-smoke -addr 127.0.0.1:18097 -audit-dir $$dir/audit -audit-batch 8 >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18097/v1/readyz >/dev/null 2>&1; then break; fi; \
		sleep 0.1; done; \
	fail=0; \
	for i in $$(seq 1 10); do \
		curl -sf -X POST http://127.0.0.1:18097/v1/query \
			-d '{"evidence":{"XRay":1},"query":["Lung"]}' >/dev/null || fail=1; \
		curl -sf -X POST http://127.0.0.1:18097/v1/query \
			-d "{\"evidence\":{\"Smoke\":$$((i % 2))}}" >/dev/null || fail=1; \
	done; \
	curl -sf -X POST http://127.0.0.1:18097/v1/mpe \
		-d '{"evidence":{"XRay":1}}' >/dev/null || fail=2; \
	curl -sf -X POST http://127.0.0.1:18097/v1/query \
		-d '{"evidence":{"NoSuchVar":1}}' >/dev/null; \
	curl -sf http://127.0.0.1:18097/v1/audit | grep -q '"enabled":true' || fail=3; \
	kill $$pid; wait $$pid 2>/dev/null; \
	/tmp/evreplay-smoke -dir $$dir/audit -mode verify >/dev/null || fail=4; \
	/tmp/evreplay-smoke -dir $$dir/audit -mode diff -network asia >/dev/null || fail=5; \
	/tmp/evserve-smoke -lazy -addr 127.0.0.1:18096 -audit-dir $$dir/lazy -audit-batch 8 >/dev/null 2>&1 & \
	lpid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18096/v1/readyz >/dev/null 2>&1; then break; fi; \
		sleep 0.1; done; \
	for i in $$(seq 1 10); do \
		curl -sf -X POST http://127.0.0.1:18096/v1/query \
			-d '{"evidence":{"XRay":1},"query":["Lung"]}' >/dev/null || fail=7; \
		curl -sf -X POST http://127.0.0.1:18096/v1/query \
			-d "{\"evidence\":{\"Smoke\":$$((i % 2))}}" >/dev/null || fail=7; \
	done; \
	curl -sf -X POST http://127.0.0.1:18096/v1/mpe \
		-d '{"evidence":{"XRay":1}}' >/dev/null || fail=7; \
	kill $$lpid; wait $$lpid 2>/dev/null; \
	/tmp/evreplay-smoke -dir $$dir/lazy -mode verify >/dev/null || fail=8; \
	/tmp/evreplay-smoke -dir $$dir/lazy -mode diff -network asia -lazy >/dev/null || fail=9; \
	seg=$$(ls $$dir/audit/*.seg | head -1); \
	size=$$(wc -c < $$seg); \
	off=$$((size / 2)); \
	orig=$$(dd if=$$seg bs=1 skip=$$off count=1 2>/dev/null | od -An -tu1 | tr -d ' '); \
	printf "$$(printf '\\%03o' $$(( (orig + 1) % 256 )))" \
		| dd of=$$seg bs=1 seek=$$off conv=notrunc 2>/dev/null; \
	if /tmp/evreplay-smoke -dir $$dir/audit -mode verify >/dev/null 2>&1; then fail=6; fi; \
	if [ $$fail -ne 0 ]; then echo "smoke-replay: step $$fail failed"; exit 1; fi; \
	echo "smoke-replay: ok"

# Smoke-test distributed tracing end to end: boot evserve with the batch
# coalescer on, let evtrace mint a sampled W3C traceparent and drive three
# identical queries through /v1/batch (identical evidence -> singleflight
# riders), fetch the kept trace back over /v1/debug/trace, and assert the
# span tree: the caller's trace ID and parent span survived, absorb ran
# before propagate, every sub-query has its batch.item span, and at least
# one coalesced rider linked into the leader's tree.
smoke-trace:
	@$(GO) build -o /tmp/evserve-smoke ./cmd/evserve
	@$(GO) build -o /tmp/evtrace-smoke ./cmd/evtrace
	@/tmp/evserve-smoke -addr 127.0.0.1:18095 -batch-window 20ms >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18095/v1/readyz >/dev/null 2>&1; then break; fi; \
		sleep 0.1; done; \
	/tmp/evtrace-smoke -url http://127.0.0.1:18095 -drive 3 -assert; rc=$$?; \
	kill $$pid; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then echo "smoke-trace: span-tree asserts failed"; exit 1; fi; \
	echo "smoke-trace: ok"

# The PR gate: formatting and static checks plus the full test suite under
# the race detector (includes the concurrent-engine stress tests), the
# evserve smoke tests (evtop dashboard + multi-model hot reload + durable
# audit replay + traceparent propagation), and the kernel bench harness
# smoke.
check: fmt-check vet staticcheck race smoke-evtop smoke-multimodel smoke-replay smoke-trace smoke-kernels
