GO ?= go

.PHONY: build test race vet bench bench-serving check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

bench-serving:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkMutexSerializedQuery' -benchtime 2s -cpu 4 .

# The PR gate: static checks plus the full test suite under the race
# detector (includes the concurrent-engine stress tests).
check: vet race
