GO ?= go

.PHONY: build test race vet staticcheck fmt-check bench bench-serving fuzz-smoke trace smoke-evtop check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (it is not vendored); CI installs and runs
# it. Skips with a notice when the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

bench-serving:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkMutexSerializedQuery|BenchmarkCachedQuery|BenchmarkSingleflightStorm' -benchtime 2s -cpu 4 .

# Short fuzz run of the evidence-signature canonicalization (the same smoke
# step CI runs); go test -fuzz accepts one fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzEvidenceSignature -fuzztime 10s ./internal/cache

# Smoke-test the Chrome trace export: one traced propagation, written as
# trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev).
trace:
	$(GO) run ./cmd/evbench -trace /tmp/evprop-trace.json

# Smoke-test the live dashboard end to end: start evserve on an ephemeral
# port, render one evtop frame against its /v1/stream, then shut down.
smoke-evtop:
	@$(GO) build -o /tmp/evserve-smoke ./cmd/evserve
	@$(GO) build -o /tmp/evtop-smoke ./cmd/evtop
	@/tmp/evserve-smoke -addr 127.0.0.1:18098 >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18098/v1/readyz >/dev/null 2>&1; then break; fi; \
		sleep 0.1; done; \
	curl -sf -o /dev/null -X POST http://127.0.0.1:18098/v1/query \
		-d '{"evidence":{"XRay":1}}'; \
	/tmp/evtop-smoke -url http://127.0.0.1:18098 -once | grep -q "evtop —"; rc=$$?; \
	kill $$pid; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then echo "smoke-evtop: frame did not render"; exit 1; fi; \
	echo "smoke-evtop: ok"

# The PR gate: formatting and static checks plus the full test suite under
# the race detector (includes the concurrent-engine stress tests) and the
# evtop-against-evserve smoke test.
check: fmt-check vet staticcheck race smoke-evtop
