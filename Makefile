GO ?= go

.PHONY: build test race vet fmt-check bench bench-serving fuzz-smoke trace check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

bench-serving:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkMutexSerializedQuery|BenchmarkCachedQuery|BenchmarkSingleflightStorm' -benchtime 2s -cpu 4 .

# Short fuzz run of the evidence-signature canonicalization (the same smoke
# step CI runs); go test -fuzz accepts one fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzEvidenceSignature -fuzztime 10s ./internal/cache

# Smoke-test the Chrome trace export: one traced propagation, written as
# trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev).
trace:
	$(GO) run ./cmd/evbench -trace /tmp/evprop-trace.json

# The PR gate: formatting and static checks plus the full test suite under
# the race detector (includes the concurrent-engine stress tests).
check: fmt-check vet race
