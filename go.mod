module evprop

go 1.22
