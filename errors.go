package evprop

import "errors"

// Sentinel errors for the conditions callers routinely branch on. They are
// wrapped with %w throughout the package, so match them with errors.Is:
//
//	post, err := res.Posterior("Lung")
//	if errors.Is(err, evprop.ErrZeroProbabilityEvidence) { ... }
var (
	// ErrUnknownVariable reports a variable name that does not exist in
	// the network — in evidence, in a query list, or as a CPT parent.
	ErrUnknownVariable = errors.New("evprop: unknown variable")

	// ErrBadState reports an observed state index outside [0, states) for
	// the observed variable.
	ErrBadState = errors.New("evprop: evidence state out of range")

	// ErrZeroProbabilityEvidence reports evidence with P(e) = 0: the
	// observation is impossible under the model, so posteriors and MPE are
	// undefined.
	ErrZeroProbabilityEvidence = errors.New("evprop: evidence has zero probability")

	// ErrUncompiled reports use of a nil or zero-value Engine; engines
	// come from Network.Compile.
	ErrUncompiled = errors.New("evprop: engine not compiled")

	// ErrResultClosed reports use of a QueryResult after Close recycled
	// its propagation state.
	ErrResultClosed = errors.New("evprop: query result closed")
)
