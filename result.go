package evprop

import (
	"context"
	"fmt"
	"sync"
	"time"

	"evprop/internal/core"
	"evprop/internal/obs"
	"evprop/internal/potential"
)

// QueryResult is one completed evidence propagation, the session object of
// the query API: posteriors, the probability of evidence, joint marginals,
// mutual information and the most probable explanation are all derived
// from it without re-propagating. Obtain one from Engine.Propagate, read
// any number of quantities, then Close it to recycle the propagation state
// into the engine's pool:
//
//	res, err := eng.Propagate(evprop.Evidence{"XRay": 1})
//	if err != nil { ... }
//	defer res.Close()
//	pe := res.ProbabilityOfEvidence()
//	lung, err := res.Posterior("Lung")
//
// A QueryResult is safe for concurrent use until Close; every returned
// slice or map is a copy that stays valid afterwards. The one quantity
// that needs extra work is MPE, which lazily runs a single max-product
// propagation on first call and caches it.
type QueryResult struct {
	eng    *Engine
	ev     Evidence
	iev    potential.Evidence
	cached bool

	mu     sync.Mutex
	res    *core.Result
	maxRes *core.Result // lazy max-product companion for MPE
	closed bool
}

// Cached reports whether this result was served from the engine's
// shared-evidence cache — a hit on an earlier identical propagation, or a
// collapse onto another caller's concurrent one — rather than by running
// its own propagation. Always false on engines compiled without CacheSize.
func (r *QueryResult) Cached() bool { return r.cached }

// Propagate runs one evidence propagation and returns the session result.
// Any number of goroutines may Propagate on the same engine concurrently;
// no external locking is needed.
func (e *Engine) Propagate(ev Evidence) (*QueryResult, error) {
	return e.PropagateContext(context.Background(), ev)
}

// PropagateContext is Propagate with cancellation: a cancelled context
// stops the scheduler run at the next task boundary and returns ctx.Err().
func (e *Engine) PropagateContext(ctx context.Context, ev Evidence) (*QueryResult, error) {
	return e.propagateSession(ctx, ev, nil)
}

// PropagateSoft runs one propagation with both hard and soft (likelihood)
// evidence and returns the session result.
func (e *Engine) PropagateSoft(ev Evidence, soft SoftEvidence) (*QueryResult, error) {
	return e.propagateSession(context.Background(), ev, soft)
}

// PropagateSoftContext is PropagateSoft with cancellation.
func (e *Engine) PropagateSoftContext(ctx context.Context, ev Evidence, soft SoftEvidence) (*QueryResult, error) {
	return e.propagateSession(ctx, ev, soft)
}

func (e *Engine) propagateSession(ctx context.Context, ev Evidence, soft SoftEvidence) (*QueryResult, error) {
	if e == nil || e.inner == nil || e.net == nil {
		return nil, ErrUncompiled
	}
	iev, err := e.net.evidence(ev)
	if err != nil {
		return nil, err
	}
	var like potential.Likelihood
	if len(soft) > 0 {
		like, err = e.net.likelihood(soft)
		if err != nil {
			return nil, err
		}
	}
	var res *core.Result
	var cached bool
	if e.inner.CacheEnabled() {
		e.syncModelVersion()
		res, cached, err = e.inner.PropagateCachedContext(ctx, iev, like)
	} else if like == nil {
		res, err = e.inner.PropagateContext(ctx, iev)
	} else {
		res, err = e.inner.PropagateSoftContext(ctx, iev, like)
	}
	if err != nil {
		return nil, err
	}
	evCopy := make(Evidence, len(ev))
	for k, v := range ev {
		evCopy[k] = v
	}
	return &QueryResult{eng: e, ev: evCopy, iev: iev, cached: cached, res: res}, nil
}

// syncModelVersion purges the result cache when the source network has been
// structurally mutated since the engine last looked: results keyed under the
// old structure must not survive an AddVariable. The purge runs before the
// version counter advances, so every racer on the boundary purges (harmless)
// and the CAS only stops repeats once one of them has published the new
// version.
func (e *Engine) syncModelVersion() {
	v := e.net.inner.Version()
	old := e.modelVersion.Load()
	if v == old {
		return
	}
	e.inner.InvalidateCache()
	e.modelVersion.CompareAndSwap(old, v)
}

// Close recycles the propagation state into the engine's pool. Quantities
// already returned (slices, maps) remain valid; further derivations return
// ErrResultClosed, except ProbabilityOfEvidence, which is cached. Close is
// idempotent and optional — unclosed results are garbage collected, they
// just cost the pool a state.
func (r *QueryResult) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.res.Release()
	if r.maxRes != nil {
		r.maxRes.Release()
		r.maxRes = nil
	}
	return nil
}

// ProbabilityOfEvidence returns P(e), the likelihood of the observation
// under the model. It is derived at propagation time, so it works even
// after Close.
func (r *QueryResult) ProbabilityOfEvidence() float64 {
	return r.res.ProbabilityOfEvidence()
}

// RunMetrics is the observability report of the propagation behind one
// QueryResult — the paper's Fig. 8 quantities measured on a real run.
type RunMetrics struct {
	// Elapsed is the propagation's wall-clock makespan.
	Elapsed time.Duration
	// Workers is the number of scheduler workers P.
	Workers int
	// Tasks, Pieces, Partitioned and Steals count executed items, pieces
	// of partitioned tasks, tasks split by the Partition module, and items
	// taken from another worker's ready list (work-stealing only).
	Tasks, Pieces, Partitioned, Steals int
	// LoadBalance is max/mean per-worker busy time: 1.0 is perfect balance.
	LoadBalance float64
	// OverheadFraction is scheduling time / total worker time — the
	// paper's "<0.9% scheduler overhead" number.
	OverheadFraction float64
	// BusyPerWorker and OverheadPerWorker are the per-worker columns of
	// the paper's Fig. 8 bars.
	BusyPerWorker     []time.Duration
	OverheadPerWorker []time.Duration
	// BusyByKind splits computation time across the four node-level
	// primitives (marginalize, divide, extend, multiply).
	BusyByKind map[string]time.Duration
}

// Metrics returns the run report of the propagation that produced this
// result, or nil when the configured scheduler does not report metrics
// (serial and the simulator baselines). It stays available after Close.
func (r *QueryResult) Metrics() *RunMetrics {
	if r.res == nil || r.res.Sched == nil {
		return nil
	}
	return runMetricsFromReport(obs.FromSched(r.res.Sched))
}

// runMetricsFromReport converts an internal run report to the public type.
func runMetricsFromReport(rep *obs.Report) *RunMetrics {
	m := &RunMetrics{
		Elapsed:           rep.Elapsed,
		Workers:           rep.Workers,
		Tasks:             rep.Tasks,
		Pieces:            rep.Pieces,
		Partitioned:       rep.Partitioned,
		Steals:            rep.Steals,
		LoadBalance:       rep.LoadBalance,
		OverheadFraction:  rep.OverheadFraction,
		BusyPerWorker:     append([]time.Duration(nil), rep.Busy...),
		OverheadPerWorker: append([]time.Duration(nil), rep.Overhead...),
		BusyByKind:        make(map[string]time.Duration, len(obs.KindNames)),
	}
	for k, name := range obs.KindNames {
		m.BusyByKind[name] = rep.KindBusy[k]
	}
	return m
}

// Evidence returns a copy of the evidence this result conditions on.
func (r *QueryResult) Evidence() Evidence {
	out := make(Evidence, len(r.ev))
	for k, v := range r.ev {
		out[k] = v
	}
	return out
}

// Posterior returns the posterior distribution P(name | evidence).
func (r *QueryResult) Posterior(name string) ([]float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.posteriorLocked(name)
}

func (r *QueryResult) posteriorLocked(name string) ([]float64, error) {
	if r.closed {
		return nil, ErrResultClosed
	}
	id := r.eng.net.inner.ID(name)
	if id < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	if r.res.ProbabilityOfEvidence() <= 0 {
		return nil, fmt.Errorf("%w: posterior of %q undefined", ErrZeroProbabilityEvidence, name)
	}
	m, err := r.res.Marginal(id)
	if err != nil {
		return nil, fmt.Errorf("evprop: %q: %w", name, err)
	}
	return append([]float64(nil), m.Data...), nil
}

// Posteriors returns the posterior of each named variable; with no names it
// returns the posterior of every non-evidence variable.
func (r *QueryResult) Posteriors(names ...string) (map[string][]float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(names) == 0 {
		for _, name := range r.eng.net.Variables() {
			if _, fixed := r.ev[name]; !fixed {
				names = append(names, name)
			}
		}
	}
	out := make(map[string][]float64, len(names))
	for _, name := range names {
		p, err := r.posteriorLocked(name)
		if err != nil {
			return nil, err
		}
		out[name] = p
	}
	return out, nil
}

// Joint computes the posterior over an arbitrary set of variables, even
// when they do not share a clique (the minimal subtree of calibrated
// cliques spanning them is folded). Cost grows exponentially with the
// number of requested variables.
func (r *QueryResult) Joint(vars ...string) (*Joint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.jointAnyLocked(vars)
	if err != nil {
		return nil, err
	}
	out := &Joint{
		Card: append([]int(nil), m.Card...),
		P:    append([]float64(nil), m.Data...),
	}
	for _, id := range m.Vars {
		out.Vars = append(out.Vars, r.eng.net.inner.Name(id))
	}
	return out, nil
}

func (r *QueryResult) jointAnyLocked(vars []string) (*potential.Potential, error) {
	if r.closed {
		return nil, ErrResultClosed
	}
	ids, err := r.eng.net.names(vars)
	if err != nil {
		return nil, err
	}
	if r.res.ProbabilityOfEvidence() <= 0 {
		return nil, fmt.Errorf("%w: joint over %v undefined", ErrZeroProbabilityEvidence, vars)
	}
	return r.res.JointMarginalAny(ids)
}

// MutualInformation returns I(x; y | evidence) in bits, derived from this
// propagation without re-propagating.
func (r *QueryResult) MutualInformation(x, y string) (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	xid := r.eng.net.inner.ID(x)
	yid := r.eng.net.inner.ID(y)
	if xid < 0 {
		return 0, fmt.Errorf("%w: %q", ErrUnknownVariable, x)
	}
	if yid < 0 {
		return 0, fmt.Errorf("%w: %q", ErrUnknownVariable, y)
	}
	if xid == yid {
		return 0, fmt.Errorf("evprop: mutual information of %q with itself", x)
	}
	joint, err := r.jointAnyLocked([]string{x, y})
	if err != nil {
		return 0, err
	}
	return joint.MutualInformation()
}

// MPE returns the jointly most probable assignment of all variables given
// the evidence and its conditional probability P(assignment | evidence).
// The first call runs one max-product propagation (the only derivation
// that needs a different semiring) and caches it; repeated calls are free.
func (r *QueryResult) MPE() (map[string]int, float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrResultClosed
	}
	pe := r.res.ProbabilityOfEvidence()
	if pe <= 0 {
		return nil, 0, fmt.Errorf("%w: no explanation exists", ErrZeroProbabilityEvidence)
	}
	if r.maxRes == nil {
		var mr *core.Result
		var err error
		if r.eng.inner.CacheEnabled() {
			mr, _, err = r.eng.inner.PropagateMaxCachedContext(context.Background(), r.iev)
		} else {
			mr, err = r.eng.inner.PropagateMax(r.iev)
		}
		if err != nil {
			return nil, 0, err
		}
		r.maxRes = mr
	}
	assignment, joint, err := r.maxRes.MostProbableExplanation()
	if err != nil {
		return nil, 0, err
	}
	named := make(map[string]int, len(assignment))
	for id, state := range assignment {
		named[r.eng.net.inner.Name(id)] = state
	}
	return named, joint / pe, nil
}

// PropagationStats reports how much work the lazy engine pruned for this
// query, measured against what an eager two-pass propagation over the same
// tree would do. All zero (and ok false) on engines compiled without
// Options.Lazy.
type PropagationStats struct {
	// MessagesSent, MessagesBlocked and MessagesSkipped partition the
	// tree's 2×edges potential messages by fate: sent in full, collapsed
	// to a scalar by a fully observed separator, or never sent at all
	// (undisturbed subtree, or distribution not demanded by any query).
	MessagesSent, MessagesBlocked, MessagesSkipped int64
	// TasksRun and TasksSkipped count node-level primitives (marginalize,
	// divide, extend, multiply) against the eager graph's 8 per edge.
	TasksRun, TasksSkipped int64
	// Flops counts potential-table entries processed; FlopsFull is the
	// eager engine's per-query total on this tree.
	Flops, FlopsFull int64
	// MaterializedEntries counts table entries copied or allocated for
	// this query; untouched regions of the precalibrated tree cost zero.
	MaterializedEntries int64
}

// PropagationStats returns the lazy engine's pruning counters for this
// result. The counters are live: posterior reads materialize deferred
// root-to-leaf messages and advance them. ok is false on eager engines and
// after Close.
func (r *QueryResult) PropagationStats() (PropagationStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return PropagationStats{}, false
	}
	s, ok := r.res.LazyStats()
	if !ok {
		return PropagationStats{}, false
	}
	return PropagationStats{
		MessagesSent:        s.MessagesSent,
		MessagesBlocked:     s.MessagesBlocked,
		MessagesSkipped:     s.MessagesSkipped,
		TasksRun:            s.TasksRun,
		TasksSkipped:        s.TasksSkipped,
		Flops:               s.Flops,
		FlopsFull:           s.FlopsFull,
		MaterializedEntries: s.MaterializedEntries,
	}, true
}
