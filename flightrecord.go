package evprop

import (
	"context"
	"encoding/hex"
	"time"

	"evprop/internal/obs"
	"evprop/internal/sched"
)

// Per-request observability: every propagation carries a query ID (threaded
// through the context) and leaves a summary in the engine's always-on flight
// recorder — a fixed-size lock-free ring of recent queries plus an automatic
// slow-query capture that retains the full scheduler trace of any
// propagation beyond the slow threshold. This is the layer that answers
// "why was *that* query slow?" in production, after the fact.

// WithQueryID returns a context carrying a query ID. Propagations run under
// this context are recorded under the ID, so an HTTP server that stamps each
// request can later find the matching flight-recorder entry.
func WithQueryID(ctx context.Context, id string) context.Context {
	return obs.WithQueryID(ctx, id)
}

// QueryIDFrom extracts the query ID from a context, "" when none is set.
func QueryIDFrom(ctx context.Context) string { return obs.QueryIDFrom(ctx) }

// NewQueryID returns a process-unique query ID (e.g. "q-9f2c41d3-17").
func NewQueryID() string { return obs.NewQueryID() }

// FlightRecord is one propagation's summary in the engine's flight recorder.
type FlightRecord struct {
	// Seq orders records over the recorder's lifetime.
	Seq uint64 `json:"seq"`
	// ID is the query ID the propagation ran under.
	ID string `json:"id"`
	// Time is when the propagation completed.
	Time time.Time `json:"time"`
	// Mode is "sum-product", "max-product" or "collect".
	Mode string `json:"mode"`
	// EvidenceVars is the number of observed variables.
	EvidenceVars int `json:"evidence_vars"`
	// ElapsedUsec is the propagation's wall-clock time in microseconds.
	ElapsedUsec float64 `json:"elapsed_usec"`
	// Workers and Tasks describe the scheduler run (0 for schedulers that
	// report no metrics).
	Workers int `json:"workers"`
	Tasks   int `json:"tasks"`
	// LoadBalance and SchedOverheadFrac are the run's Fig. 8 gauges.
	LoadBalance       float64 `json:"load_balance"`
	SchedOverheadFrac float64 `json:"sched_overhead_fraction"`
	// Error is the propagation failure, omitted on success.
	Error string `json:"error,omitempty"`
	// Slow marks records that crossed the slow-capture threshold.
	Slow bool `json:"slow"`
	// Cached marks queries served from the shared-evidence result cache
	// (no scheduler ran for them).
	Cached bool `json:"cached"`
	// Lazy marks runs executed by the zero-aware lazy engine; the pruning
	// counters that follow explain where the run's work went (messages by
	// fate, table entries processed vs one eager two-pass propagation), so
	// a slow lazy query is explainable straight from the flight recorder.
	Lazy             bool  `json:"lazy,omitempty"`
	LazyMsgSent      int64 `json:"lazy_msg_sent,omitempty"`
	LazyMsgBlocked   int64 `json:"lazy_msg_blocked,omitempty"`
	LazyMsgSkipped   int64 `json:"lazy_msg_skipped,omitempty"`
	LazyFlops        int64 `json:"lazy_flops,omitempty"`
	LazyFlopsFull    int64 `json:"lazy_flops_full,omitempty"`
	LazyMaterialized int64 `json:"lazy_materialized,omitempty"`
	// EvidenceSig is the canonical evidence signature (hex) of the query's
	// inputs — the result-cache key, and the handle audit replay uses to
	// correlate identical queries.
	EvidenceSig string `json:"evidence_sig,omitempty"`
	// Evidence is the query's full observed-variable map, present only on
	// engines compiled with Options.RecordEvidence.
	Evidence map[string]int `json:"evidence,omitempty"`
}

// TraceEvent is one executed scheduler item in a slow-query capture's
// timeline.
type TraceEvent struct {
	Worker int    `json:"worker"`
	Task   int    `json:"task"`
	Kind   string `json:"kind"`
	// Lo and Hi give a partitioned piece's index range; Hi is -1 for whole
	// tasks.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Combine marks the combining subtask of a partitioned task.
	Combine bool `json:"combine,omitempty"`
	// StartUsec and EndUsec are offsets from the run's start.
	StartUsec float64 `json:"start_usec"`
	EndUsec   float64 `json:"end_usec"`
}

// SlowQueryCapture is the full detail the flight recorder retained for one
// slow propagation: the summary, the per-worker Fig. 8 columns, and the
// complete scheduler trace.
type SlowQueryCapture struct {
	Record FlightRecord `json:"record"`
	// ThresholdUsec is the capture threshold in force when the run crossed
	// it.
	ThresholdUsec float64 `json:"threshold_usec"`
	// BusyPerWorkerUsec and OverheadPerWorkerUsec are the per-worker
	// computation and scheduling times (empty when the scheduler reported
	// no metrics).
	BusyPerWorkerUsec     []float64 `json:"busy_per_worker_usec,omitempty"`
	OverheadPerWorkerUsec []float64 `json:"overhead_per_worker_usec,omitempty"`
	// Trace is the run's execution timeline (empty when untraced).
	Trace []TraceEvent `json:"trace,omitempty"`
}

// FlightRecorderStats summarizes the recorder itself.
type FlightRecorderStats struct {
	// Enabled is false when the engine was compiled with
	// DisableFlightRecorder.
	Enabled bool `json:"enabled"`
	// Size is the summary-ring capacity.
	Size int `json:"size"`
	// Recorded counts propagations recorded over the engine's lifetime.
	Recorded int64 `json:"recorded"`
	// SlowCaptured counts propagations that crossed the slow threshold.
	SlowCaptured int64 `json:"slow_captured"`
	// SlowThresholdUsec is the capture threshold currently in force, 0
	// while the adaptive threshold is still warming up.
	SlowThresholdUsec float64 `json:"slow_threshold_usec"`
}

// FlightRecorderStats returns the recorder's own counters and current slow
// threshold.
func (e *Engine) FlightRecorderStats() FlightRecorderStats {
	fr := e.recorder()
	if fr == nil {
		return FlightRecorderStats{}
	}
	return FlightRecorderStats{
		Enabled:           true,
		Size:              fr.Size(),
		Recorded:          fr.Total(),
		SlowCaptured:      fr.SlowTotal(),
		SlowThresholdUsec: usec(fr.SlowThreshold()),
	}
}

// RecentQueries returns the flight recorder's current ring contents, oldest
// to newest — the last N propagations with their query IDs, latencies and
// Fig. 8 gauges. It returns nil when the recorder is disabled.
func (e *Engine) RecentQueries() []FlightRecord {
	fr := e.recorder()
	if fr == nil {
		return nil
	}
	recs := fr.Snapshot()
	out := make([]FlightRecord, len(recs))
	for i := range recs {
		out[i] = e.publicRecord(&recs[i])
	}
	return out
}

// SlowQueryCaptures returns the retained slow-query captures, oldest to
// newest, each with its full scheduler trace.
func (e *Engine) SlowQueryCaptures() []SlowQueryCapture {
	fr := e.recorder()
	if fr == nil {
		return nil
	}
	caps := fr.SlowSnapshot()
	out := make([]SlowQueryCapture, len(caps))
	for i := range caps {
		sc := &caps[i]
		pc := SlowQueryCapture{
			Record:        e.publicRecord(&sc.Record),
			ThresholdUsec: usec(sc.Threshold),
		}
		if sc.Report != nil {
			pc.BusyPerWorkerUsec = usecSlice(sc.Report.Busy)
			pc.OverheadPerWorkerUsec = usecSlice(sc.Report.Overhead)
		}
		if sc.Trace != nil {
			pc.Trace = publicTrace(sc.Trace)
		}
		out[i] = pc
	}
	return out
}

func (e *Engine) recorder() *obs.FlightRecorder {
	if e == nil || e.inner == nil {
		return nil
	}
	return e.inner.Recorder()
}

// publicRecord converts a recorder entry to the public shape, translating
// internal variable ids back to their names (the recorder below the
// network layer knows only ids).
func (e *Engine) publicRecord(r *obs.QueryRecord) FlightRecord {
	out := FlightRecord{
		Seq:               r.Seq,
		ID:                r.ID,
		Time:              r.Time,
		Mode:              r.Mode,
		EvidenceVars:      r.EvidenceVars,
		ElapsedUsec:       usec(r.Elapsed),
		Workers:           r.Workers,
		Tasks:             r.Tasks,
		LoadBalance:       r.LoadBalance,
		SchedOverheadFrac: r.OverheadFraction,
		Error:             r.Err,
		Slow:              r.Slow,
		Cached:            r.Cached,
		Lazy:              r.Lazy,
		LazyMsgSent:       r.LazyMsgSent,
		LazyMsgBlocked:    r.LazyMsgBlocked,
		LazyMsgSkipped:    r.LazyMsgSkipped,
		LazyFlops:         r.LazyFlops,
		LazyFlopsFull:     r.LazyFlopsFull,
		LazyMaterialized:  r.LazyMaterialized,
		EvidenceSig:       hex.EncodeToString([]byte(r.EvidenceSig)),
	}
	if len(r.Evidence) > 0 {
		out.Evidence = make(map[string]int, len(r.Evidence))
		for id, state := range r.Evidence {
			out.Evidence[e.net.inner.Name(id)] = state
		}
	}
	return out
}

func publicTrace(tr *sched.Trace) []TraceEvent {
	out := make([]TraceEvent, len(tr.Events))
	for i, ev := range tr.Events {
		out[i] = TraceEvent{
			Worker:    ev.Worker,
			Task:      ev.Task,
			Kind:      obs.KindNames[ev.Kind],
			Lo:        ev.Lo,
			Hi:        ev.Hi,
			Combine:   ev.Comb,
			StartUsec: usec(ev.Start),
			EndUsec:   usec(ev.End),
		}
	}
	return out
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func usecSlice(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = usec(d)
	}
	return out
}
