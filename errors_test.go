package evprop

import (
	"errors"
	"testing"
)

// impossibleNet builds a two-variable network in which observing Effect=1
// while Cause is deterministic makes the evidence impossible: P(e) = 0.
func impossibleNet(t *testing.T) *Engine {
	t.Helper()
	net := NewNetwork()
	net.MustAddVariable("Cause", 2, nil, []float64{1, 0})
	net.MustAddVariable("Effect", 2, []string{"Cause"}, []float64{
		1, 0, // Cause = 0 → Effect deterministically 0
		0, 1,
	})
	eng, err := net.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func TestErrUnknownVariable(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Query(Evidence{"Ghost": 1}, "Lung"); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("evidence on unknown variable: %v", err)
	}
	if _, err := eng.Query(nil, "Ghost"); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("query of unknown variable: %v", err)
	}
	if _, err := eng.QueryJoint(nil, "Lung", "Ghost"); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("joint over unknown variable: %v", err)
	}
	if _, err := eng.QuerySoft(nil, SoftEvidence{"Ghost": {1, 1}}, "Lung"); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("soft evidence on unknown variable: %v", err)
	}
	res, err := eng.Propagate(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, err := res.Posterior("Ghost"); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("session posterior of unknown variable: %v", err)
	}
	if _, err := res.MutualInformation("Lung", "Ghost"); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("session MI with unknown variable: %v", err)
	}
}

func TestErrBadState(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Query(Evidence{"XRay": 2}, "Lung"); !errors.Is(err, ErrBadState) {
		t.Errorf("state above range: %v", err)
	}
	if _, err := eng.Propagate(Evidence{"XRay": -1}); !errors.Is(err, ErrBadState) {
		t.Errorf("negative state: %v", err)
	}
	if _, err := eng.QuerySoft(nil, SoftEvidence{"XRay": {1, 1, 1}}, "Lung"); !errors.Is(err, ErrBadState) {
		t.Errorf("soft evidence weight-length mismatch: %v", err)
	}
}

func TestErrZeroProbabilityEvidence(t *testing.T) {
	eng := impossibleNet(t)
	res, err := eng.Propagate(Evidence{"Effect": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if pe := res.ProbabilityOfEvidence(); pe != 0 {
		t.Fatalf("P(e) = %v, want 0", pe)
	}
	if _, err := res.Posterior("Cause"); !errors.Is(err, ErrZeroProbabilityEvidence) {
		t.Errorf("posterior under impossible evidence: %v", err)
	}
	if _, _, err := res.MPE(); !errors.Is(err, ErrZeroProbabilityEvidence) {
		t.Errorf("MPE under impossible evidence: %v", err)
	}
	if _, err := res.Joint("Cause", "Effect"); !errors.Is(err, ErrZeroProbabilityEvidence) {
		t.Errorf("joint under impossible evidence: %v", err)
	}
	if _, _, err := eng.MostProbableExplanation(Evidence{"Effect": 1}); !errors.Is(err, ErrZeroProbabilityEvidence) {
		t.Errorf("wrapper MPE under impossible evidence: %v", err)
	}
}

func TestErrUncompiled(t *testing.T) {
	var eng *Engine
	if _, err := eng.Propagate(nil); !errors.Is(err, ErrUncompiled) {
		t.Errorf("nil engine Propagate: %v", err)
	}
	if _, err := eng.Query(nil, "X"); !errors.Is(err, ErrUncompiled) {
		t.Errorf("nil engine Query: %v", err)
	}
	if _, err := eng.QueryOne(nil, "X"); !errors.Is(err, ErrUncompiled) {
		t.Errorf("nil engine QueryOne: %v", err)
	}
	zero := &Engine{}
	if _, err := zero.Propagate(nil); !errors.Is(err, ErrUncompiled) {
		t.Errorf("zero-value engine Propagate: %v", err)
	}
	if st := eng.Stats(); st != (EngineStats{}) {
		t.Errorf("nil engine stats = %+v", st)
	}
	eng.Close() // must not panic
}

func TestErrResultClosed(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Propagate(Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	pe := res.ProbabilityOfEvidence()
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	if err := res.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := res.Posterior("Lung"); !errors.Is(err, ErrResultClosed) {
		t.Errorf("posterior after Close: %v", err)
	}
	if _, err := res.Posteriors(); !errors.Is(err, ErrResultClosed) {
		t.Errorf("posteriors after Close: %v", err)
	}
	if _, err := res.Joint("Lung", "Bronc"); !errors.Is(err, ErrResultClosed) {
		t.Errorf("joint after Close: %v", err)
	}
	if _, _, err := res.MPE(); !errors.Is(err, ErrResultClosed) {
		t.Errorf("MPE after Close: %v", err)
	}
	// P(e) is cached at propagation time and survives Close.
	if got := res.ProbabilityOfEvidence(); got != pe {
		t.Errorf("P(e) after Close = %v, want %v", got, pe)
	}
}

// TestSessionResultDerivations checks the session object's contract: many
// quantities, one propagation.
func TestSessionResultDerivations(t *testing.T) {
	net := Asia()
	eng, err := net.Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	before := eng.Stats().Propagations
	res, err := eng.Propagate(Evidence{"XRay": 1, "Dysp": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, err := res.Posterior("Lung"); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Posteriors(); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Joint("Lung", "Bronc"); err != nil {
		t.Fatal(err)
	}
	if _, err := res.MutualInformation("Lung", "Smoke"); err != nil {
		t.Fatal(err)
	}
	if res.ProbabilityOfEvidence() <= 0 {
		t.Fatal("P(e) not positive")
	}
	if ev := res.Evidence(); ev["XRay"] != 1 || ev["Dysp"] != 1 {
		t.Errorf("evidence snapshot = %v", ev)
	}
	if delta := eng.Stats().Propagations - before; delta != 1 {
		t.Errorf("derivations cost %d propagations, want 1", delta)
	}
	// MPE lazily adds exactly one max-product propagation, cached across
	// repeated calls.
	if _, _, err := res.MPE(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.MPE(); err != nil {
		t.Fatal(err)
	}
	if delta := eng.Stats().Propagations - before; delta != 2 {
		t.Errorf("MPE cost %d extra propagations, want 1", delta-1)
	}
}
