package evprop

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestConcurrentPropagate hammers one shared engine from many goroutines
// with no external locking and checks every posterior bitwise-close against
// a sequentially computed baseline. Run under -race this is the contract
// test for the engine's concurrency guarantee.
func TestConcurrentPropagate(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
	)
	net := RandomNetwork(40, 2, 3, 7)
	eng, err := net.Compile(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	vars := net.Variables()
	cases := []Evidence{
		{},
		{vars[0]: 0},
		{vars[3]: 1, vars[17]: 0},
		{vars[10]: 1, vars[25]: 1, vars[39]: 0},
		{vars[5]: 0, vars[20]: 1},
	}
	// Sequential baseline, computed before any concurrency starts.
	baseline := make([]map[string][]float64, len(cases))
	for i, ev := range cases {
		post, err := eng.QueryAll(ev)
		if err != nil {
			t.Fatalf("baseline case %d: %v", i, err)
		}
		baseline[i] = post
	}

	before := eng.Stats().Propagations
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				ci := (g*rounds + round) % len(cases)
				res, err := eng.Propagate(cases[ci])
				if err != nil {
					errc <- fmt.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
				post, err := res.Posteriors()
				res.Close()
				if err != nil {
					errc <- fmt.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
				for name, want := range baseline[ci] {
					got := post[name]
					for s := range want {
						if math.Abs(got[s]-want[s]) > 1e-9 {
							errc <- fmt.Errorf("goroutine %d round %d case %d: %s[%d] = %v, want %v",
								g, round, ci, name, s, got[s], want[s])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Each Propagate call costs exactly one scheduler invocation.
	if delta := eng.Stats().Propagations - before; delta != goroutines*rounds {
		t.Errorf("propagation counter advanced by %d, want %d", delta, goroutines*rounds)
	}
}

// TestConcurrentMixedQueries exercises the convenience wrappers (which
// recycle pooled state) concurrently with session results that stay open
// across other goroutines' propagations.
func TestConcurrentMixedQueries(t *testing.T) {
	net := Asia()
	eng, err := net.Compile(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	wantLung, err := net.ExactMarginal("Lung", Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := eng.Propagate(Evidence{"XRay": 1})
				if err != nil {
					errc <- err
					return
				}
				// Interleave wrapper queries while res is still open.
				if _, err := eng.Query(Evidence{"Dysp": 1}, "Bronc"); err != nil {
					errc <- err
					res.Close()
					return
				}
				lung, err := res.Posterior("Lung")
				res.Close()
				if err != nil {
					errc <- err
					return
				}
				if math.Abs(lung[1]-wantLung[1]) > 1e-9 {
					errc <- fmt.Errorf("goroutine %d iter %d: Lung = %v, want %v", g, i, lung, wantLung)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPropagateContextCancelled checks that an already-cancelled context
// fails fast without corrupting the engine for later queries.
func TestPropagateContextCancelled(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.PropagateContext(ctx, Evidence{"XRay": 1}); err == nil {
		t.Fatal("cancelled context did not fail")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The engine must still answer after a cancelled run.
	if _, err := eng.Query(Evidence{"XRay": 1}, "Lung"); err != nil {
		t.Fatalf("engine broken after cancellation: %v", err)
	}
}
