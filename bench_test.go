// Benchmarks regenerating every table and figure of the paper (via the
// simulated multicore machine — see DESIGN.md for the substitution
// rationale) plus real-execution benchmarks of the primitives, the
// compilation pipeline and every scheduler on host-scale junction trees.
//
//	go test -bench=. -benchmem
package evprop

import (
	"bytes"
	"fmt"
	"testing"

	"evprop/internal/baseline"
	"evprop/internal/bayesnet"
	"evprop/internal/bif"
	"evprop/internal/experiments"
	"evprop/internal/jtree"
	"evprop/internal/machine"
	"evprop/internal/potential"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// --- Figure regenerators (one per table/figure) ---------------------------

// BenchmarkFig5Rerooting regenerates Fig. 5 and reports the 8-core
// rerooting speedup of the widest template (b=8).
func BenchmarkFig5Rerooting(b *testing.B) {
	cm := machine.Default()
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cm)
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[len(r.Series)-1]
		last = s.Speedup[len(s.Speedup)-1]
	}
	b.ReportMetric(last, "speedup@8cores")
}

// BenchmarkRerootingAlgorithm1 measures the real wall-clock cost of root
// selection plus rerooting on a 512-clique junction tree — the paper
// reports 24 µs against ~1e5 µs of propagation.
func BenchmarkRerootingAlgorithm1(b *testing.B) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 512, Width: 15, States: 2, Degree: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tr.SelectRoot()
		if _, err := tr.Reroot(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PNLBaseline regenerates Fig. 6 and reports the collapse
// ratio t(16)/t(4) of Junction tree 1 (must exceed 1: the distributed
// baseline slows down beyond 4 processors).
func BenchmarkFig6PNLBaseline(b *testing.B) {
	cm := machine.Default()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(cm)
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[0]
		ratio = s.Seconds[len(s.Seconds)-1] / s.Seconds[2]
	}
	b.ReportMetric(ratio, "t16/t4")
}

// BenchmarkFig7Methods regenerates Fig. 7 and reports the three 8-core
// speedups for Junction tree 1.
func BenchmarkFig7Methods(b *testing.B) {
	cm := machine.Default()
	at8 := map[string]float64{}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(cm)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Series {
			if s.Tree == "JT1" {
				at8[s.Method] = s.Speedup[len(s.Speedup)-1]
			}
		}
	}
	b.ReportMetric(at8["collaborative"], "collaborative@8")
	b.ReportMetric(at8["dataparallel"], "dataparallel@8")
	b.ReportMetric(at8["openmp"], "openmp@8")
}

// BenchmarkFig8LoadBalance regenerates Fig. 8 and reports the worst
// per-thread scheduling-overhead percentage at 8 threads (paper: ≤ 0.9 %).
func BenchmarkFig8LoadBalance(b *testing.B) {
	cm := machine.Default()
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(cm)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		pt := r.Points[len(r.Points)-1]
		for _, o := range pt.OverheadPct {
			if o > worst {
				worst = o
			}
		}
	}
	b.ReportMetric(worst, "maxSchedPct@8")
}

// BenchmarkFig9Parameters regenerates Fig. 9 and reports the minimum
// 8-core speedup over all parameter settings except the small-table
// (wC=10, r=2) case the paper also excludes.
func BenchmarkFig9Parameters(b *testing.B) {
	cm := machine.Default()
	var minSp float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(cm)
		if err != nil {
			b.Fatal(err)
		}
		minSp = 1e9
		for _, s := range r.Series {
			if s.Label == "wC=10" {
				continue
			}
			if sp := s.Speedup[len(s.Speedup)-1]; sp < minSp {
				minSp = sp
			}
		}
	}
	b.ReportMetric(minSp, "minSpeedup@8")
}

// --- Real-execution benchmarks (host-scale tables) -------------------------

// benchTree builds a materialized junction tree small enough to execute on
// the host but large enough that primitive work dominates.
func benchTree(b *testing.B) *jtree.Tree {
	b.Helper()
	tr, err := jtree.Random(jtree.RandomConfig{N: 64, Width: 10, States: 2, Degree: 4, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.MaterializeRandom(9); err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkPrimitiveMarginalize measures the marginalization primitive on a
// 2^14-entry table.
func BenchmarkPrimitiveMarginalize(b *testing.B) {
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	card := make([]int, len(vars))
	for i := range card {
		card[i] = 2
	}
	p, err := potential.NewConstant(vars, card, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marginal(vars[:7]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimitiveMultiply measures the aligned table multiplication
// primitive.
func BenchmarkPrimitiveMultiply(b *testing.B) {
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	card := make([]int, len(vars))
	for i := range card {
		card[i] = 2
	}
	p, err := potential.NewConstant(vars, card, 1)
	if err != nil {
		b.Fatal(err)
	}
	q, err := potential.NewConstant(vars[:7], card[:7], 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MulBy(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimitiveExtend measures the extension primitive.
func BenchmarkPrimitiveExtend(b *testing.B) {
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	card := make([]int, len(vars))
	for i := range card {
		card[i] = 2
	}
	q, err := potential.NewConstant(vars[:7], card[:7], 1)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := potential.New(vars, card)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(dst.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.ExtendInto(dst, 0, dst.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimitiveMarginalizeScalar is the per-entry reference path for
// BenchmarkPrimitiveMarginalize: the same marginalization without the
// run-decomposed kernel, for an at-a-glance blocked-vs-scalar comparison
// (cmd/evkernels produces the systematic one in BENCH_kernels.json).
func BenchmarkPrimitiveMarginalizeScalar(b *testing.B) {
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	card := make([]int, len(vars))
	for i := range card {
		card[i] = 2
	}
	p, err := potential.NewConstant(vars, card, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := potential.New(vars[:7], card[:7])
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MarginalIntoScalar(dst, 0, p.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimitiveMultiplyScalar is the per-entry reference path for
// BenchmarkPrimitiveMultiply.
func BenchmarkPrimitiveMultiplyScalar(b *testing.B) {
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	card := make([]int, len(vars))
	for i := range card {
		card[i] = 2
	}
	p, err := potential.NewConstant(vars, card, 1)
	if err != nil {
		b.Fatal(err)
	}
	q, err := potential.NewConstant(vars[:7], card[:7], 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MulRangeScalar(q, 0, p.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileAsia measures the full Bayesian-network-to-junction-tree
// compilation pipeline.
func BenchmarkCompileAsia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, _ := bayesnet.Asia()
		if _, err := net.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialPropagation measures one full two-pass evidence
// propagation executed serially.
func BenchmarkSerialPropagation(b *testing.B) {
	tr := benchTree(b)
	g := taskgraph.Build(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := g.NewState()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.Serial(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollaborative measures the collaborative scheduler end to end at
// several worker counts (wall-clock speedup requires a multicore host; on
// one core this measures scheduling overhead).
func BenchmarkCollaborative(b *testing.B) {
	tr := benchTree(b)
	g := taskgraph.Build(tr)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(benchName("P", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := g.NewState()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sched.Run(st, sched.Options{Workers: p, Threshold: 256}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineSchedulers measures the comparison executors end to end.
func BenchmarkBaselineSchedulers(b *testing.B) {
	tr := benchTree(b)
	g := taskgraph.Build(tr)
	run := func(name string, f func(st *taskgraph.State) error) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := g.NewState()
				if err != nil {
					b.Fatal(err)
				}
				if err := f(st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("levelsync", func(st *taskgraph.State) error { _, err := baseline.LevelSync(st, 4); return err })
	run("dataparallel", func(st *taskgraph.State) error { _, err := baseline.DataParallel(st, 4); return err })
	run("centralized", func(st *taskgraph.State) error { _, err := baseline.Centralized(st, 4); return err })
	run("distributed", func(st *taskgraph.State) error { _, err := baseline.DistributedEmu(st, 4); return err })
}

// BenchmarkEndToEndQuery measures a public-API query on the Asia network,
// the library's headline use case.
func BenchmarkEndToEndQuery(b *testing.B) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ev := Evidence{"XRay": 1, "Smoke": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ev, "Lung", "Tub", "Bronc"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, p int) string {
	return fmt.Sprintf("%s=%d", prefix, p)
}

// BenchmarkBIFParse measures parsing a written BIF file of a mid-size
// random network.
func BenchmarkBIFParse(b *testing.B) {
	net := bayesnet.RandomNetwork(40, 2, 3, 3)
	var buf bytes.Buffer
	if err := bif.Write(&buf, net, "bench", nil); err != nil {
		b.Fatal(err)
	}
	src := buf.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := bif.ParseString(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := doc.ToNetwork(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPE measures max-product propagation plus MPE extraction.
func BenchmarkMPE(b *testing.B) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ev := Evidence{"Dysp": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.MostProbableExplanation(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryOne measures the collection-only fast path against the
// full two-pass query (see BenchmarkEndToEndQuery).
func BenchmarkQueryOne(b *testing.B) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ev := Evidence{"XRay": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryOne(ev, "Lung"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryJoint measures an out-of-clique joint posterior.
func BenchmarkQueryJoint(b *testing.B) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryJoint(nil, "Asia", "XRay", "Dysp"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSeparation measures Bayes-Ball reachability on a larger
// network.
func BenchmarkDSeparation(b *testing.B) {
	net := RandomNetwork(200, 2, 3, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.DSeparated([]string{"A"}, []string{"GR"}, []string{"Z", "BA"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRerootSelectOnly isolates Algorithm 1's root selection from the
// tree copy.
func BenchmarkRerootSelectOnly(b *testing.B) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 512, Width: 15, States: 2, Degree: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.SelectRoot() < 0 {
			b.Fatal("no root")
		}
	}
}
