package evclient

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"evprop"
)

// Snapshot is one /v1/stream event: the last-minute traffic summary plus
// the default model's live scheduler gauge surface. Field meanings match
// GET /v1/stats.
type Snapshot struct {
	Time         time.Time              `json:"time"`
	UptimeSec    float64                `json:"uptime_sec"`
	Requests     int64                  `json:"window_requests"`
	QPS          float64                `json:"qps"`
	ErrorRate    float64                `json:"error_rate"`
	P50Usec      float64                `json:"p50_usec"`
	P99Usec      float64                `json:"p99_usec"`
	LoadBalance  float64                `json:"load_balance"`
	CacheHitRate float64                `json:"cache_hit_rate"`
	Propagations int64                  `json:"propagations"`
	Errors       int64                  `json:"errors"`
	Scheduler    string                 `json:"scheduler"`
	Workers      int                    `json:"workers"`
	Models       int                    `json:"models"`
	Gauges       evprop.SchedulerGauges `json:"gauges"`
}

// Stream subscribes to GET /v1/stream and feeds each decoded snapshot to
// fn until the stream ends, fn returns false (clean stop, nil error), or
// ctx is canceled. The connection uses the client's underlying transport;
// callers wanting reconnect-forever semantics loop around it.
func (c *Client) Stream(ctx context.Context, fn func(Snapshot) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stream", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return scanEvents(resp.Body, func(ev sseEvent) bool {
		var s Snapshot
		if json.Unmarshal([]byte(ev.data), &s) != nil {
			return true // tolerate malformed events; the next one will do
		}
		return fn(s)
	})
}

// sseEvent is one Server-Sent-Events frame: the last id: field and the
// data: payload (multiple data lines joined with newlines, per the spec).
type sseEvent struct {
	id   string
	data string
}

// scanEvents parses an SSE byte stream, calling fn once per complete event.
// fn returning false stops the scan early (clean stop, nil error); otherwise
// scanning continues until the stream ends. A trailing event without a
// terminating blank line is discarded, mirroring browser EventSource.
func scanEvents(r io.Reader, fn func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ev sseEvent
	dispatch := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			if dispatch {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
			dispatch = false
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue // comment / keep-alive
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			ev.id = value
		case "data":
			if ev.data != "" {
				ev.data += "\n"
			}
			ev.data += value
			dispatch = true
		}
	}
	return sc.Err()
}
