package evclient

import (
	"strings"
	"testing"
)

// TestScanEvents covers the SSE parser: multi-line data, comments, ids, and
// early stop.
func TestScanEvents(t *testing.T) {
	payload := ": keep-alive\nid: 1\ndata: {\"a\":\ndata: 1}\n\nid: 2\ndata: second\n\ndata: third\n\n"
	var got []sseEvent
	if err := scanEvents(strings.NewReader(payload), func(ev sseEvent) bool {
		got = append(got, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("events %+v", got)
	}
	if got[0].id != "1" || got[0].data != "{\"a\":\n1}" {
		t.Errorf("event 0 %+v", got[0])
	}
	if got[1].id != "2" || got[1].data != "second" {
		t.Errorf("event 1 %+v", got[1])
	}
	// Early stop: fn returning false ends the scan after the first event.
	n := 0
	if err := scanEvents(strings.NewReader(payload), func(sseEvent) bool {
		n++
		return false
	}); err != nil || n != 1 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}
