package evclient

import (
	"context"
	"fmt"
	"net/url"
	"time"
)

// Typed access to evserve's observability surface: the per-model flight
// recorder (GET /v1/debug/flightrecorder) and the durable audit pipeline's
// status (GET /v1/audit). The structs mirror the server's JSON shapes
// field-for-field, so the client stays stdlib-only without importing the
// engine.

// FlightRecord is one propagation's summary from the server's flight
// recorder.
type FlightRecord struct {
	Seq               uint64         `json:"seq"`
	ID                string         `json:"id"`
	Time              time.Time      `json:"time"`
	Mode              string         `json:"mode"`
	EvidenceVars      int            `json:"evidence_vars"`
	ElapsedUsec       float64        `json:"elapsed_usec"`
	Workers           int            `json:"workers"`
	Tasks             int            `json:"tasks"`
	LoadBalance       float64        `json:"load_balance"`
	SchedOverheadFrac float64        `json:"sched_overhead_fraction"`
	Error             string         `json:"error,omitempty"`
	Slow              bool           `json:"slow"`
	Cached            bool           `json:"cached"`
	Lazy              bool           `json:"lazy,omitempty"`
	LazyMsgSent       int64          `json:"lazy_msg_sent,omitempty"`
	LazyMsgBlocked    int64          `json:"lazy_msg_blocked,omitempty"`
	LazyMsgSkipped    int64          `json:"lazy_msg_skipped,omitempty"`
	LazyFlops         int64          `json:"lazy_flops,omitempty"`
	LazyFlopsFull     int64          `json:"lazy_flops_full,omitempty"`
	LazyMaterialized  int64          `json:"lazy_materialized,omitempty"`
	EvidenceSig       string         `json:"evidence_sig,omitempty"`
	Evidence          map[string]int `json:"evidence,omitempty"`
}

// TraceEvent is one executed scheduler item in a slow-query capture.
type TraceEvent struct {
	Worker    int     `json:"worker"`
	Task      int     `json:"task"`
	Kind      string  `json:"kind"`
	Lo        int     `json:"lo"`
	Hi        int     `json:"hi"`
	Combine   bool    `json:"combine,omitempty"`
	StartUsec float64 `json:"start_usec"`
	EndUsec   float64 `json:"end_usec"`
}

// SlowQueryCapture is the full detail retained for one slow propagation.
type SlowQueryCapture struct {
	Record                FlightRecord `json:"record"`
	ThresholdUsec         float64      `json:"threshold_usec"`
	BusyPerWorkerUsec     []float64    `json:"busy_per_worker_usec,omitempty"`
	OverheadPerWorkerUsec []float64    `json:"overhead_per_worker_usec,omitempty"`
	Trace                 []TraceEvent `json:"trace,omitempty"`
}

// FlightRecorderStats summarizes the recorder itself.
type FlightRecorderStats struct {
	Enabled           bool    `json:"enabled"`
	Size              int     `json:"size"`
	Recorded          int64   `json:"recorded"`
	SlowCaptured      int64   `json:"slow_captured"`
	SlowThresholdUsec float64 `json:"slow_threshold_usec"`
}

// FlightRecorderQuery selects and pages one model's flight recorder.
type FlightRecorderQuery struct {
	// Model selects the recorder ("" = the default model).
	Model string
	// ID filters records and slow captures to one query ID.
	ID string
	// Since, when non-nil, returns only records with Seq strictly greater
	// — pass the previous page's NextSince to tail the ring. nil returns
	// from the oldest retained record (including Seq 0).
	Since *uint64
	// Limit caps the page, oldest first (0 = no cap).
	Limit int
}

// FlightRecorderPage is one page of the recorder: records oldest to
// newest, the retained slow captures, and the cursor for the next page.
type FlightRecorderPage struct {
	Model     string              `json:"model"`
	Recorder  FlightRecorderStats `json:"recorder"`
	Records   []FlightRecord      `json:"records"`
	Slow      []SlowQueryCapture  `json:"slow"`
	NextSince uint64              `json:"next_since"`
}

// FlightRecorder fetches one page of a model's flight recorder.
func (c *Client) FlightRecorder(ctx context.Context, q FlightRecorderQuery) (*FlightRecorderPage, error) {
	v := url.Values{}
	if q.Model != "" {
		v.Set("model", q.Model)
	}
	if q.ID != "" {
		v.Set("id", q.ID)
	}
	if q.Since != nil {
		v.Set("since", fmt.Sprintf("%d", *q.Since))
	}
	if q.Limit > 0 {
		v.Set("limit", fmt.Sprintf("%d", q.Limit))
	}
	path := "/v1/debug/flightrecorder"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var out FlightRecorderPage
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AuditStatus is GET /v1/audit: the durable audit pipeline's
// configuration, counters and chain head. Every field but Enabled is zero
// when the server runs without -audit-dir.
type AuditStatus struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	// Enqueued counts records offered to the pipeline, Dropped the subset
	// lost to backpressure or failed appends, Spilled the records flushed
	// durably, Batches the Merkle-chained batches appended.
	Enqueued    uint64 `json:"enqueued"`
	Dropped     uint64 `json:"dropped"`
	Spilled     uint64 `json:"spilled"`
	Batches     uint64 `json:"batches"`
	StoreErrors uint64 `json:"store_errors"`
	LastError   string `json:"last_error,omitempty"`
	// FlushTotalUsec and FlushMaxUsec aggregate store-append latency.
	FlushTotalUsec float64 `json:"flush_total_usec"`
	FlushMaxUsec   float64 `json:"flush_max_usec"`
	// LastRoot is the chain head: the newest batch's Merkle root, hex.
	LastRoot string `json:"last_root,omitempty"`
	// Segments and Bytes describe the on-disk segment store.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// AuditStatus fetches the audit pipeline's status.
func (c *Client) AuditStatus(ctx context.Context) (*AuditStatus, error) {
	var out AuditStatus
	if err := c.get(ctx, "/v1/audit", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
