package evclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestFlightRecorderQueryEncoding(t *testing.T) {
	var gotPath string
	var gotQuery map[string][]string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotQuery = r.URL.Query()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{
			"model": "alarm",
			"recorder": {"enabled": true, "size": 256, "recorded": 7},
			"records": [
				{"seq": 5, "id": "q-1", "mode": "sum-product", "cached": true,
				 "evidence_sig": "0a0b", "evidence": {"Burglary": 1}},
				{"seq": 6, "id": "q-2", "mode": "sum-product"}
			],
			"slow": [],
			"next_since": 6
		}`))
	}))
	defer ts.Close()

	since := uint64(4)
	page, err := New(ts.URL).FlightRecorder(context.Background(), FlightRecorderQuery{
		Model: "alarm", ID: "q-1", Since: &since, Limit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/debug/flightrecorder" {
		t.Errorf("path %q", gotPath)
	}
	for param, want := range map[string]string{
		"model": "alarm", "id": "q-1", "since": "4", "limit": "2",
	} {
		if len(gotQuery[param]) != 1 || gotQuery[param][0] != want {
			t.Errorf("param %s = %v, want %q", param, gotQuery[param], want)
		}
	}
	if page.Model != "alarm" || !page.Recorder.Enabled || page.NextSince != 6 {
		t.Errorf("page header: %+v", page)
	}
	if len(page.Records) != 2 || page.Records[0].Seq != 5 || !page.Records[0].Cached {
		t.Fatalf("records: %+v", page.Records)
	}
	if page.Records[0].EvidenceSig != "0a0b" || page.Records[0].Evidence["Burglary"] != 1 {
		t.Errorf("evidence capture: %+v", page.Records[0])
	}
}

func TestFlightRecorderOmitsAbsentParams(t *testing.T) {
	var gotRaw string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotRaw = r.URL.RawQuery
		w.Write([]byte(`{"model": "default", "next_since": 0}`))
	}))
	defer ts.Close()
	if _, err := New(ts.URL).FlightRecorder(context.Background(), FlightRecorderQuery{}); err != nil {
		t.Fatal(err)
	}
	// A nil Since must not become since=0: the server treats an absent
	// parameter as "from the beginning" and 0 as "strictly after seq 0".
	if gotRaw != "" {
		t.Errorf("query string %q, want empty", gotRaw)
	}
}

func TestAuditStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/audit" {
			t.Errorf("path %q", r.URL.Path)
		}
		w.Write([]byte(`{"enabled": true, "dir": "/var/audit", "enqueued": 10,
			"spilled": 9, "dropped": 1, "batches": 3, "last_root": "ff00",
			"segments": 2, "bytes": 4096}`))
	}))
	defer ts.Close()
	st, err := New(ts.URL).AuditStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Dir != "/var/audit" || st.Enqueued != 10 || st.Dropped != 1 {
		t.Errorf("status: %+v", st)
	}
	if st.Batches != 3 || st.LastRoot != "ff00" || st.Segments != 2 || st.Bytes != 4096 {
		t.Errorf("store fields: %+v", st)
	}
}

func TestObserveEnvelopeErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error": {"code": "bad_request", "message": "since must be a non-negative integer", "query_id": "q-9"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL)
	zero := uint64(0)
	_, err := c.FlightRecorder(context.Background(), FlightRecorderQuery{Since: &zero})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.QueryID != "q-9" {
		t.Errorf("envelope: %+v", apiErr)
	}
	if _, err := c.AuditStatus(context.Background()); !errors.Is(err, ErrBadRequest) {
		t.Errorf("audit err = %v, want ErrBadRequest", err)
	}
}
