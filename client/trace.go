package evclient

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"net/url"
	"time"
)

// W3C Trace Context support: callers attach a traceparent to the request
// context and every evclient call injects it, so evserve adopts the
// caller's trace ID instead of minting its own. Mint one with
// NewTraceparent, pass the sampled form to force tail sampling to keep the
// trace, then fetch the finished span tree back with Trace.
//
//	tp, id := evclient.NewTraceparent(true)
//	resp, err := c.Query(evclient.WithTraceparent(ctx, tp), model, ev)
//	tr, err := c.Trace(ctx, id)

type traceparentKey struct{}

// WithTraceparent returns a context carrying a W3C traceparent header
// value (`00-<32 hex trace id>-<16 hex span id>-<2 hex flags>`); every
// request made with the returned context sends it.
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	return context.WithValue(ctx, traceparentKey{}, traceparent)
}

// NewTraceparent mints a fresh traceparent and returns it with its 32-char
// hex trace ID. sampled sets the W3C sampled flag, which evserve's tail
// sampler treats as "always keep" — use it when you intend to fetch the
// trace back, leave it false to let the server's own sampling decide.
func NewTraceparent(sampled bool) (traceparent, traceID string) {
	var b [24]byte // 16-byte trace ID + 8-byte span ID
	if _, err := rand.Read(b[:]); err != nil {
		// The clock is a fine fallback: uniqueness, not secrecy, is the
		// requirement here.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * (i % 8)))
		}
	}
	if isZero(b[:16]) {
		b[0] = 1 // the all-zero trace ID is invalid per spec
	}
	if isZero(b[16:]) {
		b[16] = 1
	}
	traceID = hex.EncodeToString(b[:16])
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + hex.EncodeToString(b[16:]) + "-" + flags, traceID
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// injectTraceparent copies the context's traceparent, if any, onto the
// outgoing request.
func injectTraceparent(ctx context.Context, req *http.Request) {
	if tp, ok := ctx.Value(traceparentKey{}).(string); ok && tp != "" {
		req.Header.Set("traceparent", tp)
	}
}

// TraceSpan is one span of a fetched trace.
type TraceSpan struct {
	SpanID       string         `json:"span_id"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	Name         string         `json:"name"`
	Start        time.Time      `json:"start"`
	DurationUsec float64        `json:"duration_usec"`
	Status       string         `json:"status,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
}

// TraceResponse is one kept trace from GET /v1/debug/trace?id=.
type TraceResponse struct {
	TraceID string `json:"trace_id"`
	Sampled bool   `json:"sampled"`
	State   string `json:"tracestate,omitempty"`
	// Reason is the tail-sampling verdict that kept the trace: "error",
	// "slow", "flagged" or "head".
	Reason       string      `json:"reason"`
	DroppedSpans int64       `json:"dropped_spans,omitempty"`
	Spans        []TraceSpan `json:"spans"`
}

// Trace fetches one kept trace by its 32-char hex trace ID. Traces land in
// the store a beat after the response that produced them (the root span
// finishes after the body is written), and tail sampling only retains
// flagged, failed or slow traces — expect ErrTraceNotFound otherwise.
func (c *Client) Trace(ctx context.Context, id string) (*TraceResponse, error) {
	var out TraceResponse
	if err := c.get(ctx, "/v1/debug/trace?id="+url.QueryEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RecentTraces lists the most recently kept trace IDs, newest first.
func (c *Client) RecentTraces(ctx context.Context) ([]string, error) {
	var out struct {
		Recent []string `json:"recent"`
	}
	if err := c.get(ctx, "/v1/debug/trace", &out); err != nil {
		return nil, err
	}
	return out.Recent, nil
}
