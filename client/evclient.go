// Package evclient is the Go client for evserve's model-scoped /v1 API.
//
// A Client wraps one evserve base URL. Query routes take the model name
// explicitly; DefaultModel addresses the model single-model boots serve.
//
//	c := evclient.New("http://localhost:8080")
//	resp, err := c.Query(ctx, "alarm", evclient.Evidence{"Burglary": 1}, "Alarm")
//
// Failures decode the server's uniform error envelope into *APIError, and
// the exported sentinel values match by envelope code, so callers branch
// with errors.Is rather than string or status comparisons:
//
//	if errors.Is(err, evclient.ErrModelNotFound) { … }
package evclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// DefaultModel is the model name single-model evserve boots register.
const DefaultModel = "default"

// Client talks to one evserve instance. The zero value is not usable; use
// New. Clients are safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for the evserve at baseURL (scheme://host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Evidence maps variable names to observed state indices.
type Evidence map[string]int

// APIError is a decoded error envelope plus its HTTP status. Match on the
// stable Code via the sentinel values and errors.Is; Message and QueryID
// are diagnostics.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the stable machine-readable identifier from the server's
	// error table ("model_not_found", "unknown_variable", …).
	Code string
	// Message is the human-readable error text.
	Message string
	// QueryID correlates the failure with the server's access log and
	// flight recorder.
	QueryID string
	// TraceID is the failed request's distributed-trace ID (32 hex chars),
	// fetchable via Client.Trace while tail sampling retains it. Empty when
	// the server runs with tracing off.
	TraceID string
}

func (e *APIError) Error() string {
	if e.QueryID != "" {
		return fmt.Sprintf("evserve: %s: %s (HTTP %d, query %s)", e.Code, e.Message, e.Status, e.QueryID)
	}
	return fmt.Sprintf("evserve: %s: %s (HTTP %d)", e.Code, e.Message, e.Status)
}

// Is matches an APIError against the code sentinels, so
// errors.Is(err, ErrModelNotFound) works on wrapped errors too.
func (e *APIError) Is(target error) bool {
	c, ok := target.(errCode)
	return ok && e.Code == string(c)
}

// errCode is the sentinel type behind the Err… values: an envelope code
// that APIError.Is matches against.
type errCode string

func (c errCode) Error() string { return "evserve: " + string(c) }

// Sentinels for the server's error table, one per envelope code that
// callers plausibly branch on.
var (
	ErrModelNotFound           error = errCode("model_not_found")
	ErrModelNotReady           error = errCode("model_not_ready")
	ErrBadModelName            error = errCode("bad_model_name")
	ErrUnknownVariable         error = errCode("unknown_variable")
	ErrZeroProbabilityEvidence error = errCode("zero_probability_evidence")
	ErrOverloaded              error = errCode("overloaded")
	ErrDeadlineExceeded        error = errCode("deadline_exceeded")
	ErrBadRequest              error = errCode("bad_request")
	ErrTraceNotFound           error = errCode("trace_not_found")
	ErrTracingDisabled         error = errCode("tracing_disabled")
)

// envelope mirrors the server's uniform error body.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		QueryID string `json:"query_id"`
		TraceID string `json:"trace_id"`
	} `json:"error"`
}

// decodeError turns a non-2xx response into an *APIError. Bodies that are
// not envelopes (proxies, panics) degrade to code "http_<status>".
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{
			Status:  resp.StatusCode,
			Code:    env.Error.Code,
			Message: env.Error.Message,
			QueryID: env.Error.QueryID,
			TraceID: env.Error.TraceID,
		}
	}
	return &APIError{
		Status:  resp.StatusCode,
		Code:    fmt.Sprintf("http_%d", resp.StatusCode),
		Message: strings.TrimSpace(string(body)),
	}
}

// do runs one request and decodes a 2xx JSON body into out (skipped when
// out is nil); non-2xx responses return *APIError.
func (c *Client) do(req *http.Request, out any) error {
	injectTraceparent(req.Context(), req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// modelPath builds /v1/models/{name}{suffix} with the name escaped.
func modelPath(name, suffix string) string {
	return "/v1/models/" + url.PathEscape(name) + suffix
}

// ModelInfo is one model's lifecycle row, as listed by GET /v1/models.
type ModelInfo struct {
	Name          string  `json:"name"`
	State         string  `json:"state"` // "compiling", "ready", "failed"
	Source        string  `json:"source"`
	Version       int64   `json:"version"`
	Variables     int     `json:"variables"`
	CompileUsec   float64 `json:"compile_usec"`
	PublishedUnix int64   `json:"published_unix"`
	Reloading     bool    `json:"reloading"`
	Error         string  `json:"error,omitempty"`
}

// ModelSchema is GET /v1/models/{name}: the info row plus the variable
// schema of the current version.
type ModelSchema struct {
	ModelInfo
	VariableList []Variable `json:"variables_detail"`
}

// Variable is one network variable: name and state count.
type Variable struct {
	Name   string `json:"name"`
	States int    `json:"states"`
}

// modelSchemaWire matches the server's response, whose "variables" field
// is the schema list (the info row's count is not repeated).
type modelSchemaWire struct {
	ModelInfo
	Variables []Variable `json:"variables"`
}

// Models lists every registered model.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	if err := c.get(ctx, "/v1/models", &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Model fetches one model's info and variable schema.
func (c *Client) Model(ctx context.Context, name string) (*ModelSchema, error) {
	var wire modelSchemaWire
	if err := c.get(ctx, modelPath(name, ""), &wire); err != nil {
		return nil, err
	}
	s := &ModelSchema{ModelInfo: wire.ModelInfo, VariableList: wire.Variables}
	s.Variables = len(wire.Variables)
	return s, nil
}

// Upload creates or replaces a model from a BIF or XMLBIF document (the
// server sniffs the format). wait blocks until the compile publishes; the
// returned info is the model's state at response time.
func (c *Client) Upload(ctx context.Context, name string, doc []byte, wait bool) (*ModelInfo, error) {
	path := modelPath(name, "")
	if wait {
		path += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+path, bytes.NewReader(doc))
	if err != nil {
		return nil, err
	}
	var info ModelInfo
	if err := c.do(req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Delete removes a model; its in-flight queries drain before the engine
// is released.
func (c *Client) Delete(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+modelPath(name, ""), nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Reload recompiles a model from its retained source (re-reading file
// sources). wait blocks until the new version publishes.
func (c *Client) Reload(ctx context.Context, name string, wait bool) (*ModelInfo, error) {
	path := modelPath(name, "/reload")
	if wait {
		path += "?wait=1"
	}
	var info ModelInfo
	if err := c.post(ctx, path, struct{}{}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// QueryResponse is one query's answer. Model and Version identify the
// engine build that answered (versions increment on hot reload).
type QueryResponse struct {
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors"`
	Model      string               `json:"model"`
	Version    int64                `json:"version"`
}

// Query computes P(evidence) and the posteriors of the named variables
// (all non-evidence variables when none are named) on one model.
func (c *Client) Query(ctx context.Context, model string, ev Evidence, variables ...string) (*QueryResponse, error) {
	var out QueryResponse
	in := struct {
		Evidence Evidence `json:"evidence"`
		Query    []string `json:"query,omitempty"`
	}{ev, variables}
	if err := c.post(ctx, modelPath(model, "/query"), in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchQuery is one sub-query of a Batch call.
type BatchQuery struct {
	Evidence Evidence `json:"evidence"`
	Query    []string `json:"query,omitempty"`
}

// BatchResult is one sub-query's outcome; Error is set when that
// sub-query failed (its siblings still answer).
type BatchResult struct {
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors"`
	Error      string               `json:"error,omitempty"`
}

// BatchResponse carries every sub-query's result in request order, all
// answered by one engine build.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Model   string        `json:"model"`
	Version int64         `json:"version"`
}

// Batch answers many queries in one round trip on one model.
func (c *Client) Batch(ctx context.Context, model string, queries []BatchQuery) (*BatchResponse, error) {
	var out BatchResponse
	in := struct {
		Queries []BatchQuery `json:"queries"`
	}{queries}
	if err := c.post(ctx, modelPath(model, "/batch"), in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MPEResponse is the most probable explanation under the evidence.
type MPEResponse struct {
	Assignment  map[string]int `json:"assignment"`
	Probability float64        `json:"probability"`
	Model       string         `json:"model"`
	Version     int64          `json:"version"`
}

// MPE computes the most probable joint assignment consistent with the
// evidence on one model.
func (c *Client) MPE(ctx context.Context, model string, ev Evidence) (*MPEResponse, error) {
	var out MPEResponse
	in := struct {
		Evidence Evidence `json:"evidence"`
	}{ev}
	if err := c.post(ctx, modelPath(model, "/mpe"), in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DSep reports whether X ⫫ Y | Z in one model's graph.
func (c *Client) DSep(ctx context.Context, model string, x, y, z []string) (bool, error) {
	var out struct {
		Separated bool `json:"separated"`
	}
	in := struct {
		X []string `json:"x"`
		Y []string `json:"y"`
		Z []string `json:"z"`
	}{x, y, z}
	if err := c.post(ctx, modelPath(model, "/dsep"), in, &out); err != nil {
		return false, err
	}
	return out.Separated, nil
}

// Stats is the slice of GET /v1/stats clients typically branch on; the
// full body (window, cache, gauges) is available via Raw.
type Stats struct {
	Queries        int64              `json:"queries"`
	Batches        int64              `json:"batches"`
	MPEs           int64              `json:"mpes"`
	Errors         int64              `json:"errors"`
	LegacyRequests int64              `json:"legacy_requests"`
	Propagations   int64              `json:"propagations"`
	Workers        int                `json:"workers"`
	Scheduler      string             `json:"scheduler"`
	Models         []ModelStatsInline `json:"models"`
	Cache          CacheCounters      `json:"cache"`
	Audit          AuditStatus        `json:"audit"`
}

// CacheCounters is the default model's result-cache block in Stats.
type CacheCounters struct {
	Enabled   bool  `json:"enabled"`
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapsed int64 `json:"collapsed"`
}

// ModelStatsInline is one model's row inside Stats.Models.
type ModelStatsInline struct {
	ModelInfo
	Queries      int64 `json:"queries"`
	Batches      int64 `json:"batches"`
	MPEs         int64 `json:"mpes"`
	Errors       int64 `json:"errors"`
	Propagations int64 `json:"propagations"`
	CacheHits    int64 `json:"cache_hits"`
}

// Stats fetches the server-wide counters and per-model rows.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.get(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Raw performs a GET against an arbitrary server path ("/v1/stats",
// "/v1/models/alarm/stats", …) and returns the undecoded JSON body — the
// escape hatch for fields the typed structs do not carry.
func (c *Client) Raw(ctx context.Context, path string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Ready reports the server's /v1/readyz verdict: true once serving, false
// while booting or draining. Transport errors return err.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return resp.StatusCode == http.StatusOK, nil
}

// WaitReady polls /v1/readyz until the server answers ready, ctx expires,
// or the deadline elapses.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if ok, err := c.Ready(ctx); err == nil && ok {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("evclient: %s not ready after %s", c.base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
